"""Gate-level hardware substrate: netlist IR, builder DSL, simulator."""

from .netlist import (
    Circuit,
    Flop,
    Gate,
    MemoryBlock,
    NetlistError,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAMES,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    split_bit_suffix,
)
from .builder import Module, Vec
from .compiled import (
    CompiledCircuit,
    CompiledSimulator,
    CompiledUnsupported,
    CompileError,
    compile_circuit,
    decompile,
)
from .simulator import (
    BRIDGE_AND,
    BRIDGE_DOMINANT,
    BRIDGE_OR,
    CycleBudgetExceeded,
    Simulator,
)
from .coverage import ToggleReport, measure_toggle_coverage
from .verilog import (
    VerilogParseError,
    parse_verilog,
    parse_verilog_file,
    roundtrip,
    write_verilog,
)
from .vcd import VcdTracer, trace_workload
from .xprop import ResetReport, XSimulator, reset_coverage
from . import library

__all__ = [
    "Circuit", "Flop", "Gate", "MemoryBlock", "NetlistError",
    "Module", "Vec", "Simulator", "library",
    "CompiledCircuit", "CompiledSimulator", "CompiledUnsupported",
    "CompileError", "compile_circuit", "decompile",
    "BRIDGE_AND", "BRIDGE_DOMINANT", "BRIDGE_OR",
    "CycleBudgetExceeded",
    "ToggleReport", "measure_toggle_coverage",
    "VerilogParseError", "parse_verilog", "parse_verilog_file",
    "roundtrip", "write_verilog",
    "VcdTracer", "trace_workload",
    "ResetReport", "XSimulator", "reset_coverage",
    "OP_AND", "OP_BUF", "OP_CONST0", "OP_CONST1", "OP_MUX", "OP_NAMES",
    "OP_NAND", "OP_NOR", "OP_NOT", "OP_OR", "OP_XNOR", "OP_XOR",
    "split_bit_suffix",
]
