"""repro — SoC-level FMEA methodology for IEC 61508 (DATE 2007).

A full open-source reproduction of Mariani, Boschi & Colucci,
*"Using an innovative SoC-level FMEA methodology to design in compliance
with IEC61508"*, DATE 2007:

* :mod:`repro.hdl` — gate-level netlist IR, RTL-like builder DSL and a
  bit-parallel fault simulator (the "synthesized RTL" substrate);
* :mod:`repro.ecc` — parity / SEC-DED Hsiao coding, reference and
  gate-level;
* :mod:`repro.zones` — sensible-zone extraction, logic-cone statistics,
  local/wide/global fault classification and effect prediction;
* :mod:`repro.iec61508` — SIL tables, λ-algebra, diagnostic-technique
  catalog and failure-mode catalog from the norm;
* :mod:`repro.fmea` — the FMEA "spreadsheet": S/D/F factors, FIT models,
  DC/SFF computation, ranking, sensitivity analysis;
* :mod:`repro.soc` — the paper's §6 memory sub-system (F-MEM + MCE) in
  baseline and improved variants, plus workloads;
* :mod:`repro.faultinjection` — the §5 validation flow: operational
  profiler, fault-list collapser/randomizer, campaign manager,
  SENS/OBSE/DIAG monitors, result analyzer and fault simulator;
* :mod:`repro.analysis` — companion scrubbing/AVF analyses.
"""

__version__ = "1.0.0"

from . import hdl  # noqa: F401
