"""Unit and robustness tests for the content-addressed campaign store.

Covers the fingerprint semantics (what invalidates a cached outcome
and — just as important — what must *not*), the blob store's corruption
handling, crash-safe resume after SIGKILL, and two campaign runners
sharing one store directory concurrently.
"""

import copy
import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faultinjection import (
    CampaignConfig,
    ParallelCampaignRunner,
    build_environment,
)
from repro.hdl.netlist import OP_OR, OP_XOR
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.store import (
    BlobStore,
    CampaignCache,
    CorruptBlobError,
    FingerprintContext,
    diff_runs,
    gc_store,
    store_stats,
)
from repro.store.fingerprint import digest, fault_descriptor

REPO = Path(__file__).parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


@pytest.fixture(scope="module")
def candidates(env):
    return env.candidates()


@pytest.fixture(scope="module")
def serial(env, candidates):
    return env.manager(CampaignConfig()).run(candidates)


def _fault_rows(campaign):
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


def _cached_run(env, candidates, cache, **kw):
    runner = ParallelCampaignRunner(env.spec(), cache=cache, **kw)
    return runner.run(candidates)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_digest_is_canonical():
    assert digest({"b": 1, "a": [2, 3]}) == digest({"a": [2, 3], "b": 1})
    assert digest({"a": 1}) != digest({"a": 2})


def test_fault_descriptor_covers_fields(candidates):
    fault = candidates.faults[0]
    desc = fault_descriptor(fault)
    assert desc["class"] == type(fault).__name__
    assert desc["target"] == fault.target
    assert desc["zone"] == fault.zone


def test_fingerprints_are_deterministic(env, candidates):
    ctx_a = FingerprintContext.from_spec(env.spec())
    ctx_b = FingerprintContext.from_spec(env.spec())
    for fault in candidates.faults:
        assert ctx_a.fault_fingerprint(fault) == \
            ctx_b.fault_fingerprint(fault)


def test_classification_params_do_not_invalidate(env, candidates):
    """detection_window / test_windows / machines_per_pass are applied
    at classification time — the store holds raw records, so changing
    them must keep every content address (and every cache hit)."""
    base = FingerprintContext.from_spec(env.spec())
    tweaked = FingerprintContext.from_spec(env.spec(CampaignConfig(
        detection_window=3, machines_per_pass=7,
        test_windows=((1, 2),))))
    for fault in candidates.faults:
        assert base.fault_fingerprint(fault) == \
            tweaked.fault_fingerprint(fault)


def test_stimuli_change_invalidates(env, candidates):
    base = FingerprintContext.from_spec(env.spec())
    spec = env.spec()
    spec.stimuli[5] = dict(spec.stimuli[5], haddr=3)
    changed = FingerprintContext.from_spec(spec)
    fault = candidates.faults[0]
    assert base.fault_fingerprint(fault) != \
        changed.fault_fingerprint(fault)


def _mutate_one_gate(spec):
    """Flip one OR gate to XOR; return (mutated spec, gate out name)."""
    spec = copy.deepcopy(spec)
    for gate in spec.circuit.gates:
        name = spec.circuit.net_names[gate.out]
        if gate.op == OP_OR and "coder_check" in name:
            gate.op = OP_XOR
            return spec, name
    raise AssertionError("no OR gate in the checker to mutate")


def test_gate_mutation_invalidates_only_its_cones(env, candidates):
    base = FingerprintContext.from_spec(env.spec())
    mutated, _ = _mutate_one_gate(env.spec())
    after = FingerprintContext.from_spec(mutated)
    changed = sum(
        base.fault_fingerprint(f) != after.fault_fingerprint(f)
        for f in candidates.faults)
    # the mutated gate sits in some cones but not all: partial
    # invalidation, not a wholesale flush
    assert 0 < changed < len(candidates.faults)


# ----------------------------------------------------------------------
# blob store
# ----------------------------------------------------------------------
def test_blob_round_trip(tmp_path):
    blobs = BlobStore(tmp_path)
    digest_a = blobs.put(b"payload one")
    assert blobs.get(digest_a) == b"payload one"
    assert blobs.has(digest_a)
    assert blobs.put(b"payload one") == digest_a     # idempotent
    assert len(blobs) == 1
    assert blobs.total_bytes() == len(b"payload one")
    with pytest.raises(KeyError):
        blobs.get("0" * 64)


def test_corrupt_blob_is_detected(tmp_path):
    blobs = BlobStore(tmp_path)
    key = blobs.put(b"trusted bytes")
    blobs.path_for(key).write_bytes(b"tampered!")
    with pytest.raises(CorruptBlobError):
        blobs.get(key)
    assert blobs.get(key, verify=False) == b"tampered!"


# ----------------------------------------------------------------------
# corruption never crashes a campaign
# ----------------------------------------------------------------------
def test_corrupt_golden_blob_recomputes(env, candidates, serial,
                                        tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        _cached_run(env, candidates, cache, workers=1)
        run = cache.db.runs(limit=1)[0]
        cache.blobs.path_for(run["golden_blob"]).write_bytes(b"junk")

    with CampaignCache(tmp_path / "store") as cache:
        campaign = _cached_run(env, candidates, cache, workers=1)
        assert cache.stats.corrupt == 1
        assert cache.stats.simulated == 0       # outcomes still hit
        assert _fault_rows(campaign) == _fault_rows(serial)


def test_corrupt_outcome_row_is_resimulated(env, candidates, serial,
                                            tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        _cached_run(env, candidates, cache, workers=1)

    db_path = tmp_path / "store" / "store.db"
    with sqlite3.connect(db_path) as conn:
        conn.execute(
            "UPDATE outcomes SET effects='not json' WHERE fault_fp ="
            " (SELECT fault_fp FROM outcomes LIMIT 1)")

    with CampaignCache(tmp_path / "store") as cache:
        campaign = _cached_run(env, candidates, cache, workers=1)
        assert cache.stats.misses == 1          # only the broken row
        assert cache.stats.simulated == 1
        assert cache.stats.hits == len(candidates.faults) - 1
        assert _fault_rows(campaign) == _fault_rows(serial)


# ----------------------------------------------------------------------
# concurrent writers
# ----------------------------------------------------------------------
def test_two_concurrent_campaigns_share_one_store(tmp_path, serial,
                                                  env, candidates):
    """Two CLI campaigns writing the same store at once must both
    finish; INSERT OR IGNORE + WAL make the duplicate writes benign."""
    store = tmp_path / "store"
    cmd = [sys.executable, "-m", "repro.cli", "campaign",
           "--variant", "small-improved", "--store", str(store)]
    procs = [subprocess.Popen(cmd, cwd=tmp_path, env=ENV,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
             for _ in range(2)]
    outs = [p.communicate(timeout=300)[0].decode() for p in procs]
    assert all(p.returncode == 0 for p in procs), outs
    with CampaignCache(store) as cache:
        assert cache.db.outcome_count() == len(candidates.faults)
        assert len(cache.db.runs(status="done")) == 2
        # the shared store is coherent: a third run is all hits and
        # still bit-identical to the serial reference
        campaign = _cached_run(env, candidates, cache, workers=1)
        assert cache.stats.hits == len(candidates.faults)
        assert cache.stats.simulated == 0
        assert _fault_rows(campaign) == _fault_rows(serial)


# ----------------------------------------------------------------------
# crash-safe resume
# ----------------------------------------------------------------------
def test_resume_after_sigkill(tmp_path, env, candidates, serial):
    """SIGKILL a campaign mid-flight; the completed chunks must be
    reusable and the resumed run bit-identical to the reference."""
    store = tmp_path / "store"
    cmd = [sys.executable, "-m", "repro.cli", "campaign",
           "--variant", "small-improved", "--store", str(store),
           "--progress", "--machines-per-pass", "16"]
    proc = subprocess.Popen(cmd, cwd=tmp_path, env=ENV,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            line = proc.stdout.readline().decode()
            if "faults simulated" in line:
                break
        else:
            raise AssertionError("no progress line before timeout")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    with CampaignCache(store) as cache:
        persisted = cache.db.outcome_count()
        assert 0 < persisted < len(candidates.faults)
        runs = cache.db.runs()
        assert runs and runs[0]["status"] == "running"   # the marker

        campaign = _cached_run(env, candidates, cache, workers=1)
        assert cache.stats.hits == persisted
        assert cache.stats.simulated == \
            len(candidates.faults) - persisted
        assert _fault_rows(campaign) == _fault_rows(serial)


# ----------------------------------------------------------------------
# queries and garbage collection
# ----------------------------------------------------------------------
def test_store_stats_and_gc(tmp_path, env, candidates):
    with CampaignCache(tmp_path / "store") as cache:
        _cached_run(env, candidates, cache, workers=1)
        _cached_run(env, candidates, cache, workers=1)
        stats = store_stats(cache)
        assert stats.runs == 2 and stats.done_runs == 2
        assert stats.outcomes == len(candidates.faults)
        assert stats.blobs == 1 and stats.blob_bytes > 0

        diff = diff_runs(cache)
        assert diff.run_a["run_id"] < diff.run_b["run_id"]
        assert diff.changed_faults == []
        assert diff.affected_zones() == []
        assert diff.dc_delta == 0.0

        # drop the older run; the newer one keeps every outcome alive
        result = gc_store(cache, keep_runs=1)
        assert result.runs_removed == 1
        assert result.outcomes_removed == 0
        assert len(cache.db.runs()) == 1

        # dropping all runs sweeps the outcomes and the golden blob
        result = gc_store(cache, keep_runs=0)
        assert result.outcomes_removed == len(candidates.faults)
        assert result.blobs_removed == 1
        assert result.bytes_reclaimed > 0
        assert cache.db.outcome_count() == 0
        assert len(cache.blobs) == 0


def test_diff_requires_two_runs(tmp_path, env, candidates):
    with CampaignCache(tmp_path / "store") as cache:
        _cached_run(env, candidates, cache, workers=1)
        with pytest.raises(ValueError, match="two completed runs"):
            diff_runs(cache)


# ----------------------------------------------------------------------
# uncacheable campaigns bypass the store
# ----------------------------------------------------------------------
def test_toggle_collection_bypasses_store(env, candidates, tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        spec = env.spec(CampaignConfig(collect_toggles=True))
        runner = ParallelCampaignRunner(spec, workers=1, cache=cache)
        campaign = runner.run(candidates)
        assert cache.stats.uncacheable == len(candidates.faults)
        assert cache.stats.hits == cache.stats.misses == 0
        assert cache.db.outcome_count() == 0
        assert campaign.results           # the campaign itself still ran


def test_unsnapshottable_setup_bypasses_store(env, candidates,
                                              tmp_path):
    from repro.faultinjection import FaultInjectionManager
    manager = FaultInjectionManager(
        env.circuit, env.stimuli, zone_set=env.zone_set,
        setup=lambda sim: sim.stick_net(0, 1))
    with CampaignCache(tmp_path / "store") as cache:
        manager.run(candidates, cache=cache)
        assert cache.stats.uncacheable == len(candidates.faults)
        assert cache.db.outcome_count() == 0
