"""Tests for worksheet persistence, zone graph, VCD and the dossier."""

import pytest

from repro.fmea import (
    dumps_worksheet,
    load_worksheet,
    loads_worksheet,
    save_worksheet,
    worksheet_from_dict,
    worksheet_to_dict,
)
from repro.hdl import Module, Simulator, VcdTracer, trace_workload
from repro.iec61508 import SIL
from repro.reporting import build_dossier
from repro.soc import MemorySubsystem, SubsystemConfig, random_traffic
from repro.zones import (
    build_zone_graph,
    checker_placement_candidates,
    diagnostic_reach_ratio,
    undiagnosed_zones,
    zone_reach,
)


@pytest.fixture(scope="module")
def improved():
    return MemorySubsystem(SubsystemConfig.small_improved())


@pytest.fixture(scope="module")
def baseline():
    return MemorySubsystem(SubsystemConfig.small_baseline())


# ----------------------------------------------------------------------
# worksheet JSON
# ----------------------------------------------------------------------
def test_worksheet_roundtrip_dict(improved):
    sheet = improved.worksheet()
    back = worksheet_from_dict(worksheet_to_dict(sheet))
    assert len(back) == len(sheet)
    assert back.totals().sff == pytest.approx(sheet.totals().sff)
    assert back.totals().dc == pytest.approx(sheet.totals().dc)
    # claims, factors, modes survive per row
    for a, b in zip(sheet.entries, back.entries):
        assert a.zone == b.zone
        assert a.failure_mode == b.failure_mode
        assert a.ddf == pytest.approx(b.ddf)
        assert a.safe_fraction == pytest.approx(b.safe_fraction)


def test_worksheet_roundtrip_preserves_measurements(improved):
    sheet = improved.worksheet()
    zone = sheet.zone_names()[0]
    mode = sheet.rows_for_zone(zone)[0].failure_mode.name
    sheet.record_measurement(zone, mode, measured_ddf=0.77)
    back = loads_worksheet(dumps_worksheet(sheet))
    assert back.row(zone, mode).measured_ddf == pytest.approx(0.77)


def test_worksheet_file_io(improved, tmp_path):
    sheet = improved.worksheet()
    path = tmp_path / "sheet.json"
    save_worksheet(sheet, path)
    back = load_worksheet(path)
    assert back.name == sheet.name
    assert len(back) == len(sheet)


def test_worksheet_schema_check():
    with pytest.raises(ValueError, match="schema"):
        worksheet_from_dict({"schema": 999, "name": "x", "entries": []})


# ----------------------------------------------------------------------
# zone graph (networkx)
# ----------------------------------------------------------------------
def test_zone_graph_structure(improved):
    zone_set = improved.extract_zones()
    graph = build_zone_graph(zone_set)
    kinds = {d["kind"] for _, d in graph.nodes(data=True)}
    assert kinds == {"zone", "observation"}
    # edges carry distance and main-effect attributes
    some_edge = next(iter(graph.edges(data=True)))
    assert "distance" in some_edge[2] and "main" in some_edge[2]


def test_improved_has_full_diagnostic_reach(improved):
    zone_set = improved.extract_zones()
    ratio = diagnostic_reach_ratio(zone_set)
    assert ratio > 0.95
    assert undiagnosed_zones(zone_set) == []


def test_baseline_reach_not_worse_structurally(baseline, improved):
    """Structural alarm reach: the improved design adds alarm paths."""
    r_base = diagnostic_reach_ratio(baseline.extract_zones())
    r_impr = diagnostic_reach_ratio(improved.extract_zones())
    assert r_impr >= r_base


def test_zone_reach_counts(improved):
    zone_set = improved.extract_zones()
    reach = zone_reach(zone_set)
    assert reach
    assert all(v >= 0 for v in reach.values())
    # the write buffer data reaches many observation points
    wbuf = [v for k, v in reach.items()
            if k.startswith("fmem/wbuf/data")]
    assert wbuf and max(wbuf) >= 3


def test_checker_placement_candidates(improved):
    zone_set = improved.extract_zones()
    candidates = checker_placement_candidates(zone_set, top=5)
    assert len(candidates) <= 5
    scores = [s for _, s in candidates]
    assert scores == sorted(scores, reverse=True)


def test_graphml_export(improved, tmp_path):
    from repro.zones import export_graphml
    path = tmp_path / "zones.graphml"
    export_graphml(improved.extract_zones(), path)
    assert path.read_text().startswith("<?xml")


# ----------------------------------------------------------------------
# VCD tracing
# ----------------------------------------------------------------------
def test_vcd_trace_structure():
    m = Module("t")
    a = m.input("a", 4)
    q = m.reg("r", a)
    m.output("y", q)
    circ = m.build()
    sim = Simulator(circ)
    tracer = VcdTracer(circ, ["a", "y"])
    for value in (0, 5, 5, 9):
        sim.step_eval({"a": value})
        tracer.sample(sim)
        sim.step_commit()
    text = tracer.dumps()
    assert "$timescale" in text
    assert "$var wire 4" in text
    assert "$enddefinitions $end" in text
    assert "#0" in text and "#3" in text
    # value changes appear as binary vectors
    assert "b101 " in text


def test_vcd_no_redundant_changes():
    m = Module("t")
    a = m.input("a", 1)
    m.output("y", a)
    circ = m.build()
    sim = Simulator(circ)
    tracer = VcdTracer(circ, ["y"])
    for value in (1, 1, 1):
        sim.step_eval({"a": value})
        tracer.sample(sim)
        sim.step_commit()
    # only one change recorded (plus the time markers)
    changes = [ln for ln in tracer.dumps().splitlines()
               if ln.startswith("1")]
    assert len(changes) == 1


def test_trace_workload_helper(improved):
    wl = random_traffic(improved, n_ops=4, seed=2)
    text = trace_workload(improved.circuit, list(wl),
                          signals=["hrdata", "rvalid", "alarm_ce"],
                          setup=lambda s: improved.preload(s, {}))
    assert "$var" in text and "rvalid" in text


# ----------------------------------------------------------------------
# dossier
# ----------------------------------------------------------------------
def test_dossier_without_validation(improved):
    zone_set = improved.extract_zones()
    sheet = improved.worksheet(zone_set)
    text = build_dossier("unit", improved, zone_set, sheet,
                         target_sil=SIL.SIL2)
    assert "SAFETY DOSSIER" in text
    assert "sensible-zone census" in text
    assert "NOT RUN" in text
    assert "NOT COMPLIANT" in text  # no validation evidence


def test_dossier_with_validation(improved):
    from repro.faultinjection import run_validation
    zone_set = improved.extract_zones()
    sheet = improved.worksheet(zone_set)
    validation = run_validation(improved)
    text = build_dossier("unit", improved, zone_set, sheet,
                         validation=validation, target_sil=SIL.SIL2)
    assert "overall: PASS" in text
    assert "dossier conclusion    : COMPLIANT" in text.replace(
        "  ", " ") or "COMPLIANT" in text
