"""Self-FMEA layer tests: failpoints, durability hardening, jittered
backoff, graceful drain, io-pause, repair idempotency.

The full failpoint × fault-kind sweep runs in CI's
``chaos-failpoints`` job via ``soc-fmea chaos``; here we unit-test
the registry mechanics in-process and exercise a small subprocess
subset (torn blob, SIGTERM drain) so tier-1 keeps end-to-end
coverage of the crash model.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.backoff import decorrelated_delay
from repro.chaos import failpoints
from repro.chaos.failpoints import (
    FailpointSpecError,
    activate,
    clear,
    fail_at,
    parse_specs,
    registry,
    spec_string,
)
from repro.chaos.harness import scenarios
from repro.chaos.selffmea import build_worksheet
from repro.service import JobQueue, QueuePolicy
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.service.queue import JOB_QUEUED
from repro.store import (
    BlobStore,
    CampaignCache,
    CorruptBlobError,
    StoreIOError,
    fsck_store,
)

REPO = Path(__file__).parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
ENV.pop("SOCFMEA_FAILPOINTS", None)
CLI = [sys.executable, "-m", "repro.cli"]


@pytest.fixture(autouse=True)
def _clean_failpoints():
    clear()
    yield
    clear()


# ----------------------------------------------------------------------
# failpoint registry mechanics
# ----------------------------------------------------------------------
def test_spec_parse_roundtrip():
    text = ("store.db.pre-commit=kill@6,"
            "queue.heartbeat=sleep:3,"
            "store.blob.post-rename=torn")
    specs = parse_specs(text)
    assert specs["store.db.pre-commit"].trigger_at == 6
    assert specs["queue.heartbeat"].arg == 3.0
    assert parse_specs(spec_string(specs)) == specs


@pytest.mark.parametrize("bad", [
    "nope=kill",                        # unknown site
    "queue.claim=explode",              # unknown kind
    "queue.claim",                      # no action
    "queue.claim=sleep:abc",            # bad arg
    "queue.claim=kill@0",               # bad trigger
])
def test_spec_parse_rejects(bad):
    with pytest.raises(FailpointSpecError):
        parse_specs(bad)


def test_fail_at_disabled_is_noop():
    for site in registry():
        fail_at(site.name)              # nothing armed, nothing happens


def test_trigger_counting_and_stickiness():
    activate("store.db.pre-commit", "enospc", trigger_at=3)
    fail_at("store.db.pre-commit")
    fail_at("store.db.pre-commit")      # hits 1, 2: below trigger
    with pytest.raises(OSError):
        fail_at("store.db.pre-commit")  # hit 3 fires
    with pytest.raises(OSError):
        fail_at("store.db.pre-commit")  # enospc is sticky

    activate("queue.heartbeat", "sleep", arg=0.01)
    start = time.time()
    fail_at("queue.heartbeat")
    assert time.time() - start >= 0.01
    start = time.time()
    fail_at("queue.heartbeat")          # sleep fires once, not forever
    assert time.time() - start < 0.01


def test_env_configures_failpoints():
    failpoints.configure_from_env(
        {"SOCFMEA_FAILPOINTS": "queue.claim=eio"})
    try:
        assert failpoints.active()["queue.claim"].kind == "eio"
    finally:
        clear()


def test_every_failpoint_has_a_scenario():
    covered = {s.failpoint for s in scenarios()}
    assert covered == {s.name for s in registry()}
    # and every enumerated mode names its detection + recovery
    for s in scenarios():
        assert s.effect and s.detection and s.recovery


def test_worksheet_marks_unexecuted_rows_not_run():
    sheet = build_worksheet([])
    assert sheet.not_run == len(scenarios())
    assert sheet.ok                     # not-run is not a failure


# ----------------------------------------------------------------------
# blob durability + coded io errors
# ----------------------------------------------------------------------
def test_blob_put_fsyncs_when_durable(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd),
                                    real_fsync(fd))[1])
    store = BlobStore(tmp_path / "durable")
    store.put(b"payload")
    assert len(synced) >= 2             # temp file + parent dir

    synced.clear()
    lazy = BlobStore(tmp_path / "lazy", durable=False)
    lazy.put(b"payload")
    assert synced == []


def test_blob_enospc_is_coded_and_leaves_no_temp(tmp_path):
    store = BlobStore(tmp_path / "store")
    activate("store.blob.post-temp-write", "enospc")
    with pytest.raises(StoreIOError) as err:
        store.put(b"payload")
    assert "E413" in err.value.report.codes()
    clear()
    leftovers = [p for p in (tmp_path / "store" / "objects").rglob(
        ".tmp-*")]
    assert leftovers == []              # failed write cleaned up
    assert store.put(b"payload")        # and the store still works


def test_db_enospc_is_coded(tmp_path):
    activate("store.db.pre-commit", "enospc")
    with pytest.raises(StoreIOError) as err:
        with JobQueue(tmp_path / "store") as queue:
            queue.submit({})
    assert "E413" in err.value.report.codes()


# ----------------------------------------------------------------------
# jittered backoff
# ----------------------------------------------------------------------
def test_decorrelated_delay_bounds_and_determinism():
    for attempt in (1, 2, 5):
        d = decorrelated_delay(attempt, 0.5, 2.0, cap=60.0,
                               seed=7, token="job-1")
        assert 0.5 <= d <= min(60.0, 0.5 * 2.0 ** attempt)
        assert d == decorrelated_delay(attempt, 0.5, 2.0, cap=60.0,
                                       seed=7, token="job-1")
    # distinct tokens decorrelate even under one seed
    delays = {decorrelated_delay(3, 0.5, 2.0, seed=7, token=t)
              for t in range(20)}
    assert len(delays) > 15
    # cap bounds the tail
    assert decorrelated_delay(50, 1.0, 2.0, cap=30.0, seed=1) <= 30.0


def test_queue_backoff_jitter_is_seeded(tmp_path):
    def failed_not_before(root, seed):
        with JobQueue(root, policy=QueuePolicy(
                backoff_base=5.0, backoff_seed=seed)) as queue:
            job_id = queue.submit({})
            queue.claim("w1")
            queue.fail(job_id, "w1", {"kind": "x"})
            return queue.job(job_id).not_before, time.time()

    nb1, now1 = failed_not_before(tmp_path / "a", seed=11)
    nb2, now2 = failed_not_before(tmp_path / "b", seed=11)
    assert nb1 - now1 >= 5.0 - 0.5      # at least base (minus clock)
    # same seed + job id + attempt → identical jitter draw
    assert abs((nb1 - now1) - (nb2 - now2)) < 0.5


# ----------------------------------------------------------------------
# lease clock-skew tolerance
# ----------------------------------------------------------------------
def test_skew_grace_blocks_immediate_steal(tmp_path):
    with JobQueue(tmp_path / "store", policy=QueuePolicy(
            skew_grace=30.0)) as queue:
        queue.submit({})
        assert queue.claim("w1", lease_seconds=0.01) is not None
        time.sleep(0.05)
        # deadline passed, but within the skew grace: no steal
        assert queue.claim("w2", lease_seconds=30.0) is None
        # the (slow-clocked) owner is still fenced in, not out
        assert queue.heartbeat(1, "w1")


# ----------------------------------------------------------------------
# voluntary release
# ----------------------------------------------------------------------
def test_release_refunds_attempt_and_fences_owner(tmp_path):
    with JobQueue(tmp_path / "store") as queue:
        job_id = queue.submit({})
        queue.claim("w1")
        assert not queue.release(job_id, "intruder")
        assert queue.release(job_id, "w1", delay=30.0,
                             error={"kind": "io-pause"})
        job = queue.job(job_id)
        assert job.status == JOB_QUEUED
        assert job.attempts == 0        # refunded: not a failure
        assert job.error["kind"] == "io-pause"
        assert job.lease_owner is None
        assert queue.claim("w2") is None    # delay defers re-claim


def test_daemon_releases_job_on_store_io_error(tmp_path, monkeypatch):
    from repro.service.core import CampaignService
    from repro.store.errors import raise_for_io

    root = tmp_path / "store"
    with JobQueue(root) as queue:
        job_id = queue.submit({"variant": "small-improved"})

    def boom(self, *args, **kw):
        raise_for_io(OSError(28, "disk full"), "store.db")

    monkeypatch.setattr(CampaignService, "run_campaign", boom)
    daemon = ServiceDaemon(root, DaemonConfig(
        drain=True, verbose=False, io_pause_seconds=60.0))
    assert daemon.worker_loop(0) == 1   # one io-paused job, then exit

    with JobQueue(root) as queue:
        job = queue.job(job_id)
        assert job.status == JOB_QUEUED     # paused, not dead
        assert job.attempts == 0            # budget refunded
        assert job.error["kind"] == "io-pause"


# ----------------------------------------------------------------------
# graceful SIGTERM drain (subprocess)
# ----------------------------------------------------------------------
def test_sigterm_drains_gracefully(tmp_path):
    """SIGTERM mid-job: the daemon checkpoints, releases the lease
    explicitly (attempt refunded), and exits 0 — no lease-expiry
    wait, no lost progress."""
    root = tmp_path / "store"
    submit = subprocess.run(
        CLI + ["--store", str(root), "jobs", "submit",
               "--variant", "small-improved",
               "--machines-per-pass", "8"],
        cwd=tmp_path, env=ENV, capture_output=True, timeout=120)
    assert submit.returncode == 0, submit.stderr

    proc = subprocess.Popen(
        CLI + ["--store", str(root), "serve",
               "--lease", "30", "--heartbeat-interval", "0.1",
               "--poll-interval", "0.1"],
        cwd=tmp_path, env=ENV, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT)
    try:
        deadline = time.time() + 120
        claimed = False
        while time.time() < deadline:
            try:
                with sqlite3.connect(root / "store.db") as con:
                    row = con.execute(
                        "SELECT status FROM jobs").fetchone()
            except sqlite3.OperationalError:
                row = None
            if row and row[0] in ("leased", "running"):
                claimed = True
                break
            time.sleep(0.02)
        assert claimed, "job never claimed"
        proc.send_signal(signal.SIGTERM)
        exit_code = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    out = proc.stdout.read().decode()
    assert exit_code == 0, out
    assert "draining gracefully" in out
    with JobQueue(root) as queue:
        job = queue.jobs()[0]
    # released mid-run (attempt refunded, immediately claimable) —
    # or finished, if the campaign beat the signal
    if job.status == JOB_QUEUED:
        assert job.attempts == 0
        assert job.lease_owner is None
    else:
        assert job.status == "done"

    # either way the next drain completes the queue from checkpoints
    second = subprocess.run(
        CLI + ["--store", str(root), "serve", "--drain",
               "--lease", "2", "--heartbeat-interval", "0.2",
               "--poll-interval", "0.1"],
        cwd=tmp_path, env=ENV, capture_output=True, timeout=300)
    assert second.returncode == 0, second.stdout
    with JobQueue(root) as queue:
        assert queue.jobs()[0].status == "done"


# ----------------------------------------------------------------------
# repair idempotency
# ----------------------------------------------------------------------
def _populated_store(tmp_path):
    root = tmp_path / "store"
    proc = subprocess.run(
        CLI + ["--store", str(root), "campaign",
               "--variant", "small-improved"],
        cwd=tmp_path, env=ENV, capture_output=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return root


def test_fsck_repair_twice_is_noop(tmp_path):
    root = _populated_store(tmp_path)
    # tear a blob and plant a stale lease + dangling run rows
    blob = next(p for p in sorted((root / "objects").rglob("*"))
                if p.is_file())
    blob.write_bytes(blob.read_bytes()[:10])
    with JobQueue(root) as queue:
        queue.submit({})
        queue.claim("ghost", lease_seconds=0.01)
    time.sleep(0.05)

    with CampaignCache(root) as cache:
        first = fsck_store(cache, repair=True)
        assert first.repaired
    with CampaignCache(root) as cache:
        second = fsck_store(cache, repair=True)
        assert second.repaired == []    # idempotent: nothing left
        final = fsck_store(cache)
        assert not final.report.errors


def test_repair_never_deletes_leased_jobs_evidence(tmp_path):
    root = _populated_store(tmp_path)
    with CampaignCache(root) as cache:
        run_id = cache.db.runs()[-1]["run_id"]
        outcomes_before = cache.db._conn.execute(
            "SELECT COUNT(*) FROM outcomes").fetchone()[0]
    with JobQueue(root) as queue:
        job_id = queue.submit({})
        queue.claim("w1", lease_seconds=60.0)
        assert queue.record_run(job_id, "w1", run_id)

    with CampaignCache(root) as cache:
        fsck_store(cache, repair=True)
        runs = [r["run_id"] for r in cache.db.runs()]
        assert run_id in runs           # evidence survived repair
        outcomes_after = cache.db._conn.execute(
            "SELECT COUNT(*) FROM outcomes").fetchone()[0]
        assert outcomes_after == outcomes_before
    with JobQueue(root) as queue:
        job = queue.job(job_id)
        assert job.status == "leased"   # active lease untouched
        assert job.run_id == run_id


# ----------------------------------------------------------------------
# one end-to-end harness scenario under tier-1
# ----------------------------------------------------------------------
def test_chaos_cli_verifies_torn_blob(tmp_path):
    proc = subprocess.run(
        CLI + ["chaos", "--failpoint", "store.blob.post-rename",
               "--kind", "torn", "--workdir", str(tmp_path),
               "--quiet", "--json"],
        cwd=tmp_path, env=ENV, capture_output=True, text=True,
        timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    import json
    sheet = json.loads(proc.stdout)
    rows = {r["spec"]: r["verdict"] for r in sheet["rows"]}
    assert rows["store.blob.post-rename=torn"] == "VERIFIED"
    assert sheet["ok"]
