"""Differential fuzzing: the compiled bit-parallel kernel vs the
interpreted big-int oracle.

The compiled engine (:mod:`repro.hdl.compiled`) re-implements the whole
simulation semantics — levelization, lane packing, fault overlays, the
divergent-address memory path — so every behavior it has is checked
against the interpreted :class:`~repro.hdl.Simulator` on the same
inputs, bit for bit:

* hundreds of fuzzed random netlists (random gate mix, fan-out,
  flop/memory placement) swept cycle-by-cycle under random fault loads,
  comparing every net, every flop, and every memory word;
* full campaigns on the fmem subsystem and the mini CPU, comparing the
  per-fault records, outcome tallies, DC and SFF between engines;
* the sharded parallel runner at 1, 2, and 4 workers against the
  interpreted serial reference;
* the automatic fallback path (a batch containing a fault kind the
  kernel does not model) against a pure interpreted run.
"""

import random

import pytest

from repro.faultinjection import (
    BridgeFault,
    CampaignConfig,
    CandidateList,
    ENGINE_COMPILED,
    ENGINE_INTERPRETED,
    FaultInjectionManager,
    MemFlipFault,
    MemStuckFault,
    SetFault,
    SeuFault,
    StuckNetFault,
    build_environment,
)
from repro.faultinjection.parallel import (
    CampaignSpec,
    ParallelCampaignRunner,
)
from repro.hdl import CompiledSimulator, Module, Simulator, \
    compile_circuit
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.zones.model import ObservationKind, ObservationPoint

# lane-boundary machine counts (single word, exactly full word, word
# + 1) plus small ones — cycled across fuzz seeds
MACHINE_SWEEP = (2, 9, 48, 63, 64, 65)


def fuzz_circuit(seed: int):
    """A random design: gate mix, fan-out, flops, sometimes a memory."""
    rng = random.Random(seed)
    m = Module(f"fuzz{seed}")
    pool = []
    for i in range(3):
        pool.extend(m.input(f"in{i}", 2))
    rst = m.input("rst")
    n_ops = rng.randrange(12, 36)
    for _ in range(n_ops):
        op = rng.randrange(8)
        a = rng.choice(pool)
        b = rng.choice(pool)
        if op == 0:
            pool.append(a & b)
        elif op == 1:
            pool.append(a | b)
        elif op == 2:
            pool.append(a ^ b)
        elif op == 3:
            pool.append(~a)
        elif op == 4:
            pool.append(m.mux(rng.choice(pool), a, b))
        elif op == 5:
            pool.append(a.nand(b))
        elif op == 6:
            pool.append(a.nor(b))
        else:
            pool.append(a.xnor(b))
    n_regs = rng.randrange(2, 6)
    regs = []
    for r in range(n_regs):
        en = rng.choice(pool) if rng.random() < 0.5 else None
        use_rst = rst if rng.random() < 0.5 else None
        q = m.reg(f"r{r}", rng.choice(pool), en=en, rst=use_rst,
                  init=rng.getrandbits(1))
        regs.append(q)
        pool.append(q)
    if rng.random() < 0.6:
        addr = m.cat(*(rng.choice(pool) for _ in range(3)))
        wdata = m.cat(*(rng.choice(pool) for _ in range(4)))
        we = rng.choice(pool)
        rdata = m.memory("fmem", 8, 4, addr, wdata, we)
        pool.extend(rdata)
    out = pool[-1]
    for q in regs:
        out = out ^ q
    m.output("y", out)
    m.output("z", m.cat(*(rng.choice(pool) for _ in range(3))))
    return m.build()


def _arm_random_faults(rng, circuit, sims, machines):
    """The same random fault load armed on every sim in ``sims``."""
    nets = list(range(circuit.num_nets))
    flops = list(range(len(circuit.flops)))
    mem = circuit.memories[0] if circuit.memories else None
    for k in range(1, machines):
        kind = rng.randrange(5 if mem is not None else 3)
        mask = 1 << k
        if kind == 0:
            n, v = rng.choice(nets), rng.getrandbits(1)
            for s in sims:
                s.stick_net(n, v, machines=mask)
        elif kind == 1 and flops:
            f, cyc = rng.choice(flops), rng.randrange(6)
            for s in sims:
                s.schedule_flop_flip(f, cyc, machines=mask)
        elif kind == 2:
            n, cyc = rng.choice(nets), rng.randrange(6)
            for s in sims:
                s.schedule_net_glitch(n, cyc, machines=mask)
        elif kind == 3:
            w, b = rng.randrange(mem.depth), rng.randrange(mem.width)
            cyc = rng.randrange(6)
            for s in sims:
                s.schedule_mem_flip(mem.name, w, b, cyc,
                                    machines=mask)
        else:
            w, b = rng.randrange(mem.depth), rng.randrange(mem.width)
            v = rng.getrandbits(1)
            for s in sims:
                s.set_mem_cell_stuck(mem.name, w, b, v,
                                     machines=mask)


def _sweep_and_compare(circuit, seed, machines, cycles=8):
    """Run both engines under one fault load; any divergence fails."""
    rng = random.Random(seed * 7919 + machines)
    isim = Simulator(circuit, machines=machines)
    csim = CompiledSimulator(compile_circuit(circuit),
                            machines=machines)
    _arm_random_faults(rng, circuit, (isim, csim), machines)

    widths = {n: len(bits) for n, bits in circuit.inputs.items()}
    full = (1 << machines) - 1
    for cyc in range(cycles):
        stim = {n: rng.getrandbits(w) for n, w in widths.items()}
        isim.step_eval(stim)
        csim.step_eval(stim)
        for n in range(circuit.num_nets):
            assert (isim.peek(n) & full) == csim.peek(n), \
                (seed, machines, cyc, n)
        isim.step_commit()
        csim.step_commit()
        for i in range(len(circuit.flops)):
            assert (isim._flop_state[i] & full) == \
                csim._unpack(csim._flop_state[i]), \
                (seed, machines, cyc, i)
    for mem in circuit.memories:
        for w in range(mem.depth):
            for mch in range(machines):
                assert isim.read_mem_word(mem.name, w, machine=mch) \
                    == csim.read_mem_word(mem.name, w, machine=mch), \
                    (seed, machines, mem.name, w, mch)


def test_fuzzed_circuits_bit_identical():
    """>=200 fuzzed netlists, every net/flop/mem word, every cycle."""
    for seed in range(200):
        circuit = fuzz_circuit(seed)
        machines = MACHINE_SWEEP[seed % len(MACHINE_SWEEP)]
        _sweep_and_compare(circuit, seed, machines)


def test_fuzzed_lane_boundaries_dense():
    """Extra lane-boundary passes (63/64/65) on a fixed circuit set."""
    for seed in (3, 17, 42):
        circuit = fuzz_circuit(seed)
        for machines in (63, 64, 65):
            _sweep_and_compare(circuit, seed, machines, cycles=12)


# ----------------------------------------------------------------------
# mini campaigns on fuzzed circuits
# ----------------------------------------------------------------------
def _fuzz_campaign_pieces(seed):
    """(circuit, stimuli, observation points, fault list) for one seed."""
    rng = random.Random(seed + 31337)
    circuit = fuzz_circuit(seed)
    points = [
        ObservationPoint(name="y", kind=ObservationKind.OUTPUT,
                         nets=tuple(circuit.outputs["y"])),
        ObservationPoint(name="z", kind=ObservationKind.FUNCTION,
                         nets=tuple(circuit.outputs["z"])),
        ObservationPoint(name="alarm", kind=ObservationKind.ALARM,
                         nets=(rng.randrange(circuit.num_nets),)),
    ]
    widths = {n: len(b) for n, b in circuit.inputs.items()}
    stimuli = [{n: rng.getrandbits(w) for n, w in widths.items()}
               for _ in range(10)]
    nets = list(range(circuit.num_nets))
    flops = [f.name for f in circuit.flops]
    mem = circuit.memories[0] if circuit.memories else None
    faults = []
    for _ in range(rng.randrange(5, 20)):
        kind = rng.randrange(4 if mem is not None else 3)
        if kind == 0:
            faults.append(StuckNetFault(target=rng.choice(nets),
                                        value=rng.getrandbits(1)))
        elif kind == 1 and flops:
            faults.append(SeuFault(target=rng.choice(flops),
                                   offset=rng.randrange(8)))
        elif kind == 2:
            faults.append(SetFault(target=rng.choice(nets),
                                   offset=rng.randrange(8)))
        elif rng.random() < 0.5:
            faults.append(MemFlipFault(target=mem.name,
                                       word=rng.randrange(mem.depth),
                                       bit=rng.randrange(mem.width),
                                       offset=rng.randrange(8)))
        else:
            faults.append(MemStuckFault(target=mem.name,
                                        word=rng.randrange(mem.depth),
                                        bit=rng.randrange(mem.width),
                                        value=rng.getrandbits(1)))
    return circuit, stimuli, points, faults


def _fault_records(result):
    return [(r.fault.name, r.sens_cycle, r.obse_cycle, r.diag_cycle,
             r.first_alarm, r.effects) for r in result.results]


def _run_engine(circuit, stimuli, points, faults, engine,
                machines_per_pass=None):
    manager = FaultInjectionManager(
        circuit, stimuli, observation_points=points,
        config=CampaignConfig(engine=engine,
                              machines_per_pass=machines_per_pass))
    return manager.run(CandidateList(faults=faults))


def test_fuzzed_mini_campaigns_engines_identical():
    """Whole campaigns on fuzzed circuits: identical records + rates."""
    for seed in range(40):
        circuit, stimuli, points, faults = _fuzz_campaign_pieces(seed)
        ri = _run_engine(circuit, stimuli, points, faults,
                         ENGINE_INTERPRETED)
        rc = _run_engine(circuit, stimuli, points, faults,
                         ENGINE_COMPILED)
        assert _fault_records(ri) == _fault_records(rc), seed
        assert ri.outcomes() == rc.outcomes(), seed
        assert ri.measured_dc() == rc.measured_dc(), seed
        assert ri.measured_safe_fraction() == \
            rc.measured_safe_fraction(), seed


def test_fuzzed_campaign_pass_boundaries():
    """Identical results when faults split across passes differently."""
    circuit, stimuli, points, faults = _fuzz_campaign_pieces(7)
    baseline = _run_engine(circuit, stimuli, points, faults,
                           ENGINE_INTERPRETED)
    for per_pass in (1, 3, 63, 64, 65):
        rc = _run_engine(circuit, stimuli, points, faults,
                         ENGINE_COMPILED, machines_per_pass=per_pass)
        assert _fault_records(rc) == _fault_records(baseline), per_pass


def test_unsupported_kind_falls_back_identically():
    """A bridge fault in the batch reroutes the whole pass to the
    interpreted engine; the mixed run equals a pure interpreted one."""
    circuit, stimuli, points, faults = _fuzz_campaign_pieces(11)
    a, b = 2, circuit.num_nets - 3
    faults = faults[:6] + [BridgeFault(target=a, victim=b)]
    ri = _run_engine(circuit, stimuli, points, faults,
                     ENGINE_INTERPRETED)
    rc = _run_engine(circuit, stimuli, points, faults,
                     ENGINE_COMPILED)
    assert _fault_records(ri) == _fault_records(rc)
    assert ri.outcomes() == rc.outcomes()


# ----------------------------------------------------------------------
# real designs: fmem subsystem + mini CPU
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fmem_env():
    return build_environment(
        MemorySubsystem(SubsystemConfig.small_improved()), quick=True)


def test_fmem_campaign_engines_identical(fmem_env):
    candidates = fmem_env.candidates()
    ri = fmem_env.manager(
        CampaignConfig(engine=ENGINE_INTERPRETED)).run(candidates)
    rc = fmem_env.manager(
        CampaignConfig(engine=ENGINE_COMPILED)).run(candidates)
    assert _fault_records(ri) == _fault_records(rc)
    assert ri.outcomes() == rc.outcomes()
    assert ri.measured_dc() == rc.measured_dc()
    assert ri.measured_safe_fraction() == rc.measured_safe_fraction()
    assert ri.coverage.sens == rc.coverage.sens
    assert ri.coverage.obse == rc.coverage.obse
    assert ri.coverage.diag == rc.coverage.diag


def test_minicpu_campaign_engines_identical():
    cpu = MiniCpu(CpuConfig.lockstep_pair())
    circuit = cpu.circuit
    prog = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
            ("ldi", 0), ("jnz", 0), ("out",)]
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 40
    points = [
        ObservationPoint(name="out", kind=ObservationKind.OUTPUT,
                         nets=tuple(circuit.outputs["out_port"])
                         + tuple(circuit.outputs["out_valid"])),
        ObservationPoint(name="lockstep",
                         kind=ObservationKind.ALARM,
                         nets=tuple(
                             circuit.outputs["alarm_lockstep"])),
    ]
    rng = random.Random(99)
    flops = [f.name for f in circuit.flops]
    ram = next(m for m in circuit.memories if "ram" in m.name)
    faults = [SeuFault(target=rng.choice(flops),
                       offset=rng.randrange(30)) for _ in range(25)]
    faults += [StuckNetFault(target=rng.randrange(circuit.num_nets),
                             value=rng.getrandbits(1))
               for _ in range(25)]
    faults += [MemFlipFault(target=ram.name,
                            word=rng.randrange(ram.depth),
                            bit=rng.randrange(ram.width),
                            offset=rng.randrange(30))
               for _ in range(10)]

    def setup(sim):
        sim.load_mem("imem/rom", assemble(prog))

    def run(engine):
        manager = FaultInjectionManager(
            circuit, stimuli, observation_points=points, setup=setup,
            config=CampaignConfig(engine=engine))
        return manager.run(CandidateList(faults=faults))

    ri = run(ENGINE_INTERPRETED)
    rc = run(ENGINE_COMPILED)
    assert _fault_records(ri) == _fault_records(rc)
    assert ri.outcomes() == rc.outcomes()
    assert ri.measured_dc() == rc.measured_dc()


# ----------------------------------------------------------------------
# sharded parallel runner, both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_campaign_engines_identical(fmem_env, workers):
    """DC/SFF and outcome tallies are engine- and worker-invariant."""
    candidates = fmem_env.candidates()
    reference = fmem_env.manager(
        CampaignConfig(engine=ENGINE_INTERPRETED)).run(candidates)

    spec = CampaignSpec.from_environment(
        fmem_env, config=CampaignConfig(engine=ENGINE_COMPILED))
    runner = ParallelCampaignRunner(spec, workers=workers)
    sharded = runner.run(candidates)

    assert _fault_records(sharded) == _fault_records(reference)
    assert sharded.outcomes() == reference.outcomes()
    assert sharded.measured_dc() == reference.measured_dc()
    assert sharded.measured_safe_fraction() == \
        reference.measured_safe_fraction()
