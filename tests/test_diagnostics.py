"""Malformed-input corpus and diagnostics-subsystem tests.

Every CLI entry point that consumes a user file must, when fed garbage,
exit with status 2, print at least one coded diagnostic (``Exxx``) and
never leak a Python traceback.  The corpus under
``tests/data/malformed/`` seeds one file per defect class; the
parametrized test below drives each through the relevant verb.

Also covered here: the recovery parser's source locations, worksheet
schema migration and forward compatibility, zone-lookup suggestions,
``store fsck`` corruption detection with a repair → bit-identical warm
re-run round trip, degraded campaign bounds, and the ``E001`` internal
error guard.
"""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

import repro.cli as cli
from repro.cli import main
from repro.diagnostics import DiagnosticReport
from repro.faultinjection import (
    CandidateList,
    ParallelCampaignRunner,
    build_environment,
)
from repro.fmea.io import (
    WORKSHEET_MIGRATIONS,
    WorksheetFormatError,
    worksheet_from_dict,
)
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.store import CampaignCache, fsck_store
from repro.zones import zone_config_to_dict

MALFORMED = Path(__file__).parent / "data" / "malformed"
REPO = Path(__file__).parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


def _fault_rows(campaign):
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


# ----------------------------------------------------------------------
# the malformed corpus: exit 2, coded diagnostics, no traceback
# ----------------------------------------------------------------------
CORPUS = [
    ("fmea-truncated",
     ("fmea", "--load", "worksheet_truncated.json"), {"E300"}),
    ("fmea-bad-schema",
     ("fmea", "--load", "worksheet_bad_schema.json"), {"E301"}),
    ("fmea-bad-fields",
     ("fmea", "--load", "worksheet_bad_fields.json"),
     {"E302", "E303", "E304", "E305"}),
    ("zones-bad-arity",
     ("zones", "--netlist", "verilog_bad_arity.v"), {"E102", "E104"}),
    ("zones-empty-netlist",
     ("zones", "--netlist", "verilog_empty.v"), {"E101"}),
    ("campaign-unknown-zones",
     ("campaign", "--variant", "small-improved", "--no-cache",
      "--sample", "4", "--zones", "zones_unknown.json"), {"E200"}),
    ("campaign-unknown-stimuli",
     ("campaign", "--variant", "small-improved", "--no-cache",
      "--stimuli", "stimuli_unknown.json"), {"E211"}),
    ("campaign-truncated-stimuli",
     ("campaign", "--variant", "small-improved", "--no-cache",
      "--stimuli", "stimuli_bad_json.json"), {"E210"}),
    ("doctor-bad-netlist",
     ("doctor", MALFORMED, "--no-store",
      "--netlist", "verilog_bad_arity.v"), {"E102", "E104"}),
    ("doctor-worksheet-zone-drift",
     ("doctor", MALFORMED, "--no-store",
      "--zones", "zones_unknown.json",
      "--worksheet", "worksheet_bad_fields.json"), {"E310"}),
]


@pytest.mark.parametrize("argv,codes",
                         [c[1:] for c in CORPUS],
                         ids=[c[0] for c in CORPUS])
def test_malformed_input_is_diagnosed(capsys, argv, codes):
    argv = [MALFORMED / a if isinstance(a, str)
            and (MALFORMED / a).is_file() else a for a in argv]
    code, out, err = run_cli(capsys, *argv)
    text = out + err
    assert code == 2, text
    for expected in codes:
        assert expected in text
    assert "Traceback" not in text


def test_malformed_input_subprocess_smoke():
    """Through a real shell invocation: exit 2, coded, no traceback."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fmea",
         "--load", str(MALFORMED / "worksheet_truncated.json")],
        capture_output=True, text=True, env=ENV, cwd=str(REPO))
    assert proc.returncode == 2
    assert "E300" in proc.stderr
    assert "Traceback" not in proc.stderr + proc.stdout


# ----------------------------------------------------------------------
# recovery parser: every defect site, with line numbers
# ----------------------------------------------------------------------
def test_verilog_recovery_reports_all_sites_with_lines():
    from repro.hdl.verilog import parse_verilog_file
    report = DiagnosticReport()
    circuit = parse_verilog_file(
        MALFORMED / "verilog_bad_arity.v", report=report)
    assert circuit is not None           # good gates survived
    arity = [d for d in report.errors if d.code == "E102"]
    assert {d.location.line for d in arity} == {15, 16}
    assert any(d.code == "E104" for d in report.errors)
    assert all("verilog_bad_arity.v" in (d.location.file or "")
               for d in report.errors)


# ----------------------------------------------------------------------
# worksheet hardening: migration, forward compat, valid subset
# ----------------------------------------------------------------------
VALID_ENTRY = {
    "zone": "block:a",
    "kind": "register",
    "failure_mode": {"name": "seu", "persistence": "transient"},
    "raw_fit": 1.0,
    "factors": {"architectural": 0.5, "applicational": 1.0},
    "frequency": "F1",
    "lifetime_cycles": 100,
    "claims": [{"technique": "ecc", "ddf": 0.9, "software": None}],
}


def test_worksheet_migration_hook(monkeypatch):
    def upgrade(doc):
        doc["schema"] = 1
        doc["entries"] = doc.pop("rows")
        return doc

    monkeypatch.setitem(WORKSHEET_MIGRATIONS, 0, upgrade)
    sheet = worksheet_from_dict(
        {"schema": 0, "name": "legacy", "rows": [dict(VALID_ENTRY)]})
    assert sheet.name == "legacy"
    assert len(sheet.entries) == 1
    assert sheet.entries[0].zone == "block:a"


def test_worksheet_unsupported_schema_is_e301():
    with pytest.raises(WorksheetFormatError, match="E301"):
        worksheet_from_dict({"schema": 99, "name": "x", "entries": []})


def test_worksheet_tolerates_unknown_keys():
    entry = dict(VALID_ENTRY, an_unknown_future_key={"tolerated": True})
    sheet = worksheet_from_dict(
        {"schema": 1, "name": "fwd", "entries": [entry],
         "another_future_key": 7})
    assert len(sheet.entries) == 1


def test_worksheet_collect_mode_returns_valid_subset():
    data = json.loads(
        (MALFORMED / "worksheet_bad_fields.json").read_text())
    report = DiagnosticReport()
    sheet = worksheet_from_dict(data, report=report)
    assert not report.ok
    assert [e.zone for e in sheet.entries] == ["block:ok"]
    # field paths pinpoint each defect
    assert any("entries[0].zone" in d.message for d in report.errors)
    assert any("entries[0].raw_fit" in d.message
               for d in report.errors)


# ----------------------------------------------------------------------
# zone lookup: did-you-mean
# ----------------------------------------------------------------------
def test_zone_lookup_suggests_close_names(env):
    real = env.zone_set.zones[0].name
    typo = real[:-1] + ("x" if real[-1] != "x" else "y")
    with pytest.raises(KeyError) as excinfo:
        env.zone_set.by_name(typo)
    message = str(excinfo.value)
    assert "E200" in message
    assert real in message          # the did-you-mean suggestion


# ----------------------------------------------------------------------
# degraded campaign: completes with bounds, exit 3
# ----------------------------------------------------------------------
def test_degraded_campaign_bounds(capsys, tmp_path, env):
    data = zone_config_to_dict(env.zone_set)
    data["zones"].append({"name": "ghost_zone", "nets": []})
    config = tmp_path / "zones.json"
    config.write_text(json.dumps(data))

    code, out, err = run_cli(
        capsys, "campaign", "--variant", "small-improved", "--no-cache",
        "--sample", "4", "--zones", config, "--degraded")
    assert code == 3, out + err
    assert "ghost_zone" in err
    assert "Metric bounds under degraded evidence" in out
    assert "Traceback" not in out + err


def test_strict_campaign_refuses_unresolvable_zone(capsys, tmp_path,
                                                   env):
    data = zone_config_to_dict(env.zone_set)
    data["zones"].append({"name": "ghost_zone", "nets": []})
    config = tmp_path / "zones.json"
    config.write_text(json.dumps(data))

    code, out, err = run_cli(
        capsys, "campaign", "--variant", "small-improved", "--no-cache",
        "--sample", "4", "--zones", config)
    assert code == 2
    assert "E200" in out + err
    assert "--degraded" in out + err     # the remediation hint


# ----------------------------------------------------------------------
# store fsck: detect, repair, warm re-run is bit-identical
# ----------------------------------------------------------------------
def test_fsck_detects_and_repairs_corruption(env, tmp_path):
    subset = CandidateList(faults=env.candidates().faults[:16])
    store = tmp_path / "store"
    with CampaignCache(store) as cache:
        cold = ParallelCampaignRunner(env.spec(), cache=cache).run(
            subset)
    cold_rows = _fault_rows(cold)

    # corrupt one blob, one outcome row, and plant dangling rows
    blobs = sorted((store / "objects").rglob("*"))
    blob = next(p for p in blobs if p.is_file())
    blob.write_bytes(b"garbage")
    with sqlite3.connect(store / "store.db") as con:
        con.execute("UPDATE outcomes SET effects = 'not json' WHERE "
                    "fault_fp = (SELECT MIN(fault_fp) FROM outcomes)")
        con.execute("INSERT INTO run_faults "
                    "(run_id, seq, fault_fp, fault_name, outcome) "
                    "VALUES (999, 0, 'nope', 'ghost', 'missed')")

    with CampaignCache(store) as cache:
        found = fsck_store(cache)
        assert not found.clean
        codes = {d.code for d in found.report.errors}
        assert {"E401", "E404", "E405"} <= codes

        fixed = fsck_store(cache, repair=True)
        assert fixed.repaired       # human-readable repair log

        after = fsck_store(cache)
        assert not after.report.errors

        warm = ParallelCampaignRunner(env.spec(), cache=cache).run(
            subset)
    assert _fault_rows(warm) == cold_rows


def test_store_fsck_cli_on_fresh_store(capsys, tmp_path):
    store = tmp_path / "fresh"
    CampaignCache(store).close()
    code, out, err = run_cli(capsys, "store", "fsck", "--store", store)
    assert code == 0
    assert "clean" in out


# ----------------------------------------------------------------------
# doctor over a freshly exported project: zero diagnostics
# ----------------------------------------------------------------------
def test_export_then_doctor_is_clean(capsys, tmp_path):
    project = tmp_path / "proj"
    code, out, err = run_cli(capsys, "export", "--variant",
                             "small-improved", "-o", project)
    assert code == 0
    for name in ("netlist.v", "zones.json", "worksheet.json",
                 "stimuli.json"):
        assert (project / name).is_file()

    code, out, err = run_cli(capsys, "doctor", project, "--json")
    assert code == 0, out + err
    payload = json.loads(out)
    assert payload["ok"] is True
    assert payload["diagnostics"] == []


# ----------------------------------------------------------------------
# the E001 guard: internal errors never leak a traceback
# ----------------------------------------------------------------------
def test_internal_error_guard(capsys, monkeypatch):
    def boom(args):
        raise RuntimeError("wires crossed")

    monkeypatch.setattr(cli, "cmd_compare", boom)
    monkeypatch.delenv("SOCFMEA_DEBUG", raising=False)
    code, out, err = run_cli(capsys, "compare")
    assert code == 1
    assert "E001" in err
    assert "SOCFMEA_DEBUG" in err       # points at the escape hatch
    assert "Traceback" not in out + err

    monkeypatch.setenv("SOCFMEA_DEBUG", "1")
    with pytest.raises(RuntimeError, match="wires crossed"):
        main(["compare"])
