"""Tests for the ECC substrate: parity, SEC-DED Hsiao, address coding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (
    AddressedSecDed,
    SecDedCode,
    build_addressed_encoder,
    build_corrector,
    build_encoder,
    build_syndrome,
    check_parity,
    encode_parity,
    hsiao_columns,
    interleaved_parity,
    parity_of,
    suggest_check_bits,
)
from repro.hdl import Module, Simulator


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
def test_parity_of_basics():
    assert parity_of(0) == 0
    assert parity_of(1) == 1
    assert parity_of(0b1011) == 1
    assert parity_of(0b1111) == 0


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_parity_roundtrip(value):
    p = encode_parity(value)
    assert check_parity(value, p)
    assert not check_parity(value ^ 1, p)


def test_odd_parity():
    assert encode_parity(0, odd=True) == 1
    assert check_parity(0b11, encode_parity(0b11, odd=True), odd=True)


def test_interleaved_parity_detects_adjacent_double():
    value = 0b0000_0000
    lanes = 4
    p = interleaved_parity(value, 8, lanes)
    corrupted = value ^ 0b11  # adjacent 2-bit upset in lanes 0 and 1
    assert interleaved_parity(corrupted, 8, lanes) != p


# ----------------------------------------------------------------------
# Hsiao SEC-DED reference model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k,r", [(8, 5), (16, 6), (32, 7), (64, 8)])
def test_suggest_check_bits(k, r):
    assert suggest_check_bits(k) == r


def test_hsiao_columns_distinct_odd():
    cols = hsiao_columns(7, 32)
    assert len(set(cols)) == 32
    assert all(bin(c).count("1") % 2 == 1 for c in cols)
    assert all(bin(c).count("1") >= 3 for c in cols)


@pytest.mark.parametrize("k", [8, 16, 32])
def test_no_error_decodes_clean(k):
    code = SecDedCode(k)
    for data in [0, 1, (1 << k) - 1, 0x5A5A5A5A & ((1 << k) - 1)]:
        res = code.decode(data, code.encode(data))
        assert res.data == data
        assert not res.corrected and not res.uncorrectable


@pytest.mark.parametrize("k", [8, 16, 32])
def test_all_single_data_errors_corrected(k):
    code = SecDedCode(k)
    rng = random.Random(1)
    for _ in range(10):
        data = rng.getrandbits(k)
        check = code.encode(data)
        for bit in range(k):
            res = code.decode(data ^ (1 << bit), check)
            assert res.corrected and not res.uncorrectable
            assert res.data == data
            assert res.error_position == bit


def test_single_check_bit_error_flagged_not_corrupting():
    code = SecDedCode(16)
    data = 0xBEEF
    check = code.encode(data)
    for bit in range(code.r):
        res = code.decode(data, check ^ (1 << bit))
        assert res.corrected and not res.uncorrectable
        assert res.data == data


@pytest.mark.parametrize("k", [8, 32])
def test_all_double_errors_detected_not_miscorrected(k):
    code = SecDedCode(k)
    rng = random.Random(7)
    data = rng.getrandbits(k)
    cw = code.codeword(data)
    n = code.n
    for _ in range(200):
        b1, b2 = rng.sample(range(n), 2)
        res = code.decode_word(cw ^ (1 << b1) ^ (1 << b2))
        assert res.uncorrectable
        assert not res.corrected


@given(data=st.integers(min_value=0, max_value=2**16 - 1),
       bit=st.integers(min_value=0, max_value=21))
@settings(max_examples=60)
def test_property_single_codeword_error(data, bit):
    code = SecDedCode(16)
    assert code.n == 22
    res = code.decode_word(code.codeword(data) ^ (1 << bit))
    assert not res.uncorrectable
    assert res.data == data


def test_distance_check():
    assert SecDedCode(32).distance_check()


# ----------------------------------------------------------------------
# gate-level ECC matches the reference model
# ----------------------------------------------------------------------
def _build_codec_circuit(k):
    code = SecDedCode(k)
    m = Module("codec")
    data_in = m.input("data_in", k)
    stored_check = m.input("stored_check", code.r)
    with m.scope("coder"):
        check = build_encoder(m, data_in, code)
    with m.scope("decoder"):
        synd = build_syndrome(m, data_in, stored_check, code)
        corrected, single, double = build_corrector(m, data_in, synd, code)
    m.output("check", check)
    m.output("corrected", corrected)
    m.output("single", single)
    m.output("double", double)
    return code, m.build()


@pytest.mark.parametrize("k", [8, 16])
def test_gate_level_encoder_matches_reference(k):
    code, circ = _build_codec_circuit(k)
    sim = Simulator(circ)
    rng = random.Random(3)
    for _ in range(25):
        data = rng.getrandbits(k)
        sim.step({"data_in": data, "stored_check": 0})
        assert sim.output("check") == code.encode(data)


def test_gate_level_corrector_single_error():
    code, circ = _build_codec_circuit(8)
    sim = Simulator(circ)
    data = 0xA5
    check = code.encode(data)
    for bit in range(8):
        sim.step({"data_in": data ^ (1 << bit), "stored_check": check})
        assert sim.output("corrected") == data
        assert sim.output("single") == 1
        assert sim.output("double") == 0


def test_gate_level_corrector_double_error():
    code, circ = _build_codec_circuit(8)
    sim = Simulator(circ)
    data = 0x3C
    check = code.encode(data)
    sim.step({"data_in": data ^ 0b101, "stored_check": check})
    assert sim.output("double") == 1
    assert sim.output("single") == 0


def test_gate_level_clean_word():
    code, circ = _build_codec_circuit(8)
    sim = Simulator(circ)
    data = 0x5A
    sim.step({"data_in": data, "stored_check": code.encode(data)})
    assert sim.output("corrected") == data
    assert sim.output("single") == 0
    assert sim.output("double") == 0


# ----------------------------------------------------------------------
# address-augmented code
# ----------------------------------------------------------------------
def test_addressed_code_roundtrip():
    code = AddressedSecDed(16, 8)
    for addr in (0, 1, 0x80, 0xFF):
        data = 0x1234
        check = code.encode(data, addr)
        res = code.decode(data, check, addr)
        assert res.data == data and not res.uncorrectable


def test_addressed_code_detects_wrong_address():
    code = AddressedSecDed(16, 8)
    data = 0xCAFE
    check = code.encode(data, addr=0x10)
    # read back from the *wrong* address: syndrome must flag it
    assert code.addressing_fault_detected(data, check, requested_addr=0x11)


def test_addressed_code_single_bit_still_corrects():
    code = AddressedSecDed(16, 8)
    data = 0x0F0F
    addr = 0x42
    check = code.encode(data, addr)
    res = code.decode(data ^ (1 << 5), check, addr)
    assert res.corrected and res.data == data


def test_addressed_columns_disjoint_from_data_columns():
    code = AddressedSecDed(32, 8)
    assert not set(code.addr_columns) & set(code.base.columns)


def test_gate_level_addressed_encoder():
    code = AddressedSecDed(8, 5)
    m = Module("addrcodec")
    data = m.input("data", 8)
    addr = m.input("addr", 5)
    check = build_addressed_encoder(m, data, addr, code)
    m.output("check", check)
    sim = Simulator(m.build())
    rng = random.Random(11)
    for _ in range(20):
        d, a = rng.getrandbits(8), rng.getrandbits(5)
        sim.step({"data": d, "addr": a})
        assert sim.output("check") == code.encode(d, a)
