"""Tests for the §6 memory sub-system (both variants)."""

import pytest

from repro.soc import (
    AhbMaster,
    MemorySubsystem,
    SubsystemConfig,
    march_test,
    mpu_probe,
    random_traffic,
    startup_bist,
    validation_workload,
)


@pytest.fixture(scope="module")
def baseline():
    return MemorySubsystem(SubsystemConfig.small_baseline())


@pytest.fixture(scope="module")
def improved():
    return MemorySubsystem(SubsystemConfig.small_improved())


def fresh_master(sub, **kw):
    master = AhbMaster(sub, **kw)
    master.reset()
    return master


# ----------------------------------------------------------------------
# functional behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["baseline", "improved"])
def test_write_read_roundtrip(variant, baseline, improved):
    sub = baseline if variant == "baseline" else improved
    m = fresh_master(sub)
    for addr, data in [(0, 0x00), (3, 0xA5), (15, 0xFF), (7, 0x3C)]:
        m.write(addr, data)
        r = m.read(addr)
        assert r.valid
        assert r.data == data
        assert not r.any_alarm


def test_multiple_writes_then_reads(baseline):
    m = fresh_master(baseline)
    payload = {a: (a * 37) & 0xFF for a in range(16)}
    for addr, data in payload.items():
        m.write(addr, data)
    for addr, data in payload.items():
        assert m.read(addr).data == data


def test_overwrite(baseline):
    m = fresh_master(baseline)
    m.write(4, 0x11)
    m.write(4, 0x22)
    assert m.read(4).data == 0x22


def test_preload_encodes_valid_codewords(improved):
    sim = improved.simulator()
    improved.preload(sim, {5: 0x42})
    m = AhbMaster(improved, sim=sim)
    m.reset()
    r = m.read(5)
    assert r.data == 0x42
    assert not r.any_alarm


# ----------------------------------------------------------------------
# ECC behaviour through the full datapath
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["baseline", "improved"])
def test_single_bit_error_corrected(variant, baseline, improved):
    sub = baseline if variant == "baseline" else improved
    for bit in (0, 3, sub.cfg.data_bits + 1):  # data and check bits
        m = fresh_master(sub)
        m.write(7, 0x5A)
        m.sim.schedule_mem_flip("memarray/array", 7, bit,
                                cycle=m.sim.cycle)
        r = m.read(7)
        assert r.data == 0x5A, f"bit {bit} not corrected"
        assert r.alarms["alarm_ce"] == 1
        assert r.alarms["alarm_ue"] == 0


@pytest.mark.parametrize("variant", ["baseline", "improved"])
def test_double_bit_error_detected(variant, baseline, improved):
    sub = baseline if variant == "baseline" else improved
    m = fresh_master(sub)
    m.write(7, 0x5A)
    for bit in (0, 1):
        m.sim.schedule_mem_flip("memarray/array", 7, bit,
                                cycle=m.sim.cycle)
    r = m.read(7)
    assert r.alarms["alarm_ue"] == 1
    assert r.alarms["alarm_ce"] == 0


def test_baseline_pipe_fault_is_silent(baseline):
    """The §6 weakness: a fault after the pipeline stage corrupts the
    output with no alarm in the baseline design."""
    m = fresh_master(baseline)
    m.write(7, 0x5A)
    m.sim.schedule_flop_flip("fmem/decoder/pipe_data[1]",
                             cycle=m.sim.cycle + 2)
    r = m.read(7)
    assert r.data != 0x5A        # corrupted
    assert not r.any_alarm       # and silent: dangerous undetected


def test_improved_pipe_fault_raises_alarm(improved):
    """Improvement (ii): the double-redundant post-pipe checker."""
    m = fresh_master(improved)
    m.write(7, 0x5A)
    m.sim.schedule_flop_flip("fmem/decoder/pipe_data[1]",
                             cycle=m.sim.cycle + 2)
    r = m.read(7)
    assert r.alarms["alarm_pipe"] == 1


def test_improved_distributed_syndrome_classifies(improved):
    m = fresh_master(improved)
    m.write(9, 0x33)
    m.sim.schedule_mem_flip("memarray/array", 9, 2, cycle=m.sim.cycle)
    r = m.read(9)
    assert r.alarms["alarm_synd_data"] == 1
    assert r.alarms["alarm_synd_check"] == 0

    m2 = fresh_master(improved)
    m2.write(9, 0x33)
    m2.sim.schedule_mem_flip("memarray/array", 9,
                             improved.cfg.data_bits,  # a check bit
                             cycle=m2.sim.cycle)
    r2 = m2.read(9)
    assert r2.alarms["alarm_synd_check"] == 1


def test_improved_addressing_fault_detected(improved):
    """Improvement: address in ECC catches wrong addressing (stuck
    address line between MCE and the array)."""
    m = fresh_master(improved)
    m.write(0b0100, 0x77)
    m.write(0b0101, 0x11)
    # stuck-at-0 on array address bit 0: read of 0b0101 fetches 0b0100
    addr_net = None
    for net, name in enumerate(improved.circuit.net_names):
        if "memctrl/port" in name and name.endswith("t1[0]"):
            addr_net = net
    # locate the port address nets through the memory block instead
    mem = improved.circuit.memories[0]
    m.sim.stick_net(mem.addr[0], 0)
    r = m.read(0b0101)
    assert r.data != 0x11
    assert (r.alarms["alarm_synd_addr"] == 1
            or r.alarms["alarm_ue"] == 1
            or r.alarms["alarm_ce"] == 1)
    _ = addr_net


def test_baseline_addressing_fault_silent(baseline):
    """Without address-in-ECC a consistent word from the wrong address
    decodes cleanly: dangerous undetected."""
    m = fresh_master(baseline)
    m.write(0b0100, 0x77)
    m.write(0b0101, 0x11)
    mem = baseline.circuit.memories[0]
    m.sim.stick_net(mem.addr[0], 0)
    r = m.read(0b0101)
    assert r.data == 0x77        # wrong data, internally consistent
    assert not r.any_alarm


def test_improved_write_buffer_parity(improved):
    m = fresh_master(improved)
    # flip a write-buffer data bit while the word sits in the buffer
    m.sim.schedule_flop_flip("fmem/wbuf/data[0]", cycle=m.sim.cycle + 1)
    m.write(2, 0x0F)
    assert ("alarm_wbuf" in m.alarms_seen()
            or "alarm_ce" in m.alarms_seen())


def test_improved_coder_checker(improved):
    m = fresh_master(improved)
    # break one gate of the primary coder: checker must disagree
    target = None
    for i, gate in enumerate(improved.circuit.gates):
        if gate.path.startswith("fmem/coder") and \
                not gate.path.startswith("fmem/coder_check") and \
                gate.op_name == "xor":
            target = gate
            break
    assert target is not None
    m.sim.stick_net(target.out, 1)
    m.write(2, 0x00)
    assert "alarm_coder" in m.alarms_seen()


# ----------------------------------------------------------------------
# MPU
# ----------------------------------------------------------------------
def test_mpu_blocks_protected_write(improved):
    m = fresh_master(improved, mpu=0)       # everything protected
    m.write(1, 0xFF)
    assert "alarm_mpu" in m.alarms_seen()
    # the write must have been blocked
    m.mpu = (1 << improved.cfg.mpu_pages) - 1
    m.idle(2)
    assert m.read(1).data == 0x00


def test_mpu_page_granularity(improved):
    pages = improved.cfg.mpu_pages
    page_words = improved.cfg.depth // pages
    # protect only page 0
    m = fresh_master(improved, mpu=(1 << pages) - 2)
    m.write(0, 0xAA)                         # page 0: blocked
    m.write(page_words, 0xBB)                # page 1: allowed
    assert "alarm_mpu" in m.alarms_seen()
    assert m.read(page_words).data == 0xBB
    assert m.read(0).data == 0x00


# ----------------------------------------------------------------------
# BIST
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["baseline", "improved"])
def test_bist_passes_on_healthy_array(variant, baseline, improved):
    sub = baseline if variant == "baseline" else improved
    m = fresh_master(sub)
    assert m.run_bist() is True


def test_bist_detects_stuck_cell(baseline):
    m = fresh_master(baseline)
    m.sim.set_mem_cell_stuck("memarray/array", 5, 3, value=1)
    assert m.run_bist() is False
    assert "alarm_bist" in m.alarms_seen()


def test_bist_detects_stuck_address_line(baseline):
    m = fresh_master(baseline)
    mem = baseline.circuit.memories[0]
    m.sim.stick_net(mem.addr[2], 0)
    # aliasing: walking patterns through aliased cells must mismatch
    assert m.run_bist() is True or m.run_bist() is False  # completes
    # with the same pattern everywhere a pure address fault aliases
    # silently; a data-dependent pattern makes it visible -> check via
    # march over the bus instead
    m2 = fresh_master(baseline)
    m2.sim.stick_net(mem.addr[0], 0)
    m2.write(1, 0x11)
    m2.write(0, 0x22)
    assert m2.read(1).data != 0x11


# ----------------------------------------------------------------------
# scrubbing
# ----------------------------------------------------------------------
def test_scrubber_repairs_after_corrected_read(improved):
    m = fresh_master(improved, scrub_en=1)
    m.write(7, 0x5A)
    m.sim.schedule_mem_flip("memarray/array", 7, 1, cycle=m.sim.cycle)
    r = m.read(7)
    assert r.data == 0x5A and r.alarms["alarm_ce"] == 1
    # idle time: the scrubber re-reads and rewrites the fixed word
    m.idle(20)
    stored = m.sim.read_mem_word("memarray/array", 7)
    assert stored == improved.encode_word(0x5A, 7)


def test_background_scan_progresses(improved):
    m = fresh_master(improved, scrub_en=1)
    start = m.sim.flop_value("fmem/scrub/scan_cnt[0]")
    m.idle(30)
    counts = [m.sim.flop_value(f"fmem/scrub/scan_cnt[{i}]")
              for i in range(improved.cfg.addr_bits)]
    value = sum(bit << i for i, bit in enumerate(counts))
    assert value > 0 or start != 0


def test_scrub_disabled_leaves_error_in_place(improved):
    m = fresh_master(improved, scrub_en=0)
    m.write(7, 0x5A)
    m.sim.schedule_mem_flip("memarray/array", 7, 1, cycle=m.sim.cycle)
    m.read(7)
    m.idle(20)
    stored = m.sim.read_mem_word("memarray/array", 7)
    assert stored != improved.encode_word(0x5A, 7)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def test_march_workload_runs_clean(baseline):
    wl = march_test(baseline, addresses=range(4))
    sim = baseline.simulator()
    for op in wl:
        sim.step(op)
    assert sim.cycle == len(wl)


def test_random_traffic_deterministic(baseline):
    a = random_traffic(baseline, n_ops=10, seed=5)
    b = random_traffic(baseline, n_ops=10, seed=5)
    assert a.stimuli == b.stimuli
    c = random_traffic(baseline, n_ops=10, seed=6)
    assert c.stimuli != a.stimuli


def test_validation_workload_composition(improved):
    quick = validation_workload(improved, quick=True)
    full = validation_workload(improved)
    assert len(quick) < len(full)
    assert len(quick) > 20


def test_startup_bist_workload_completes(baseline):
    wl = startup_bist(baseline)
    sim = baseline.simulator()
    done = 0
    for op in wl:
        sim.step_eval(op)
        done = sim.output("bist_done")
        sim.step_commit()
    assert done == 1


def test_mpu_probe_workload_raises_alarms(improved):
    wl = mpu_probe(improved)
    sim = improved.simulator()
    saw_alarm = False
    for op in wl:
        sim.step_eval(op)
        if sim.output("alarm_mpu"):
            saw_alarm = True
        sim.step_commit()
    assert saw_alarm
