"""Tests for the companion analyses (AVF cross-check, scrubbing)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AvfEstimate,
    ScrubModel,
    assumed_dangerous_fraction,
    avf_report,
    injected_avf,
    scrub_benefit_table,
    simulate_accumulation,
    structural_exposure,
)
from repro.faultinjection import build_environment
from repro.soc import MemorySubsystem, SubsystemConfig


@pytest.fixture(scope="module")
def setup():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    env = build_environment(sub, quick=True)
    campaign = env.manager().run(env.candidates())
    return sub, env, campaign


# ----------------------------------------------------------------------
# AVF cross-check
# ----------------------------------------------------------------------
def test_injected_avf_bounds(setup):
    _, env, campaign = setup
    zones = {f.zone for f in (r.fault for r in campaign.results)}
    for zone in zones:
        avf = injected_avf(campaign, zone)
        if avf is not None:
            assert 0.0 <= avf <= 1.0


def test_assumed_dangerous_fraction(setup):
    _, env, _ = setup
    value = assumed_dangerous_fraction(env.worksheet,
                                       env.worksheet.zone_names()[0])
    assert value is not None and 0.0 <= value <= 1.0


def test_structural_exposure(setup):
    _, env, _ = setup
    profile = env.profile()
    reg = next(z for z in env.zone_set.zones
               if z.kind.value == "register"
               and profile.zone_triggered(z))
    exposure = structural_exposure(profile, reg)
    assert exposure is not None and 0.0 < exposure <= 1.0


def test_avf_report_builds(setup):
    _, env, campaign = setup
    report = avf_report(env.zone_set, env.worksheet,
                        campaign=campaign, profile=env.profile())
    assert report.estimates
    text = report.render()
    assert "vulnerability cross-check" in text


def test_avf_consistency_rule():
    est = AvfEstimate(zone="z", injected_avf=0.5,
                      assumed_dangerous_fraction=0.6)
    assert est.consistent() is True
    est2 = AvfEstimate(zone="z", injected_avf=0.9,
                       assumed_dangerous_fraction=0.2)
    assert est2.consistent() is False
    est3 = AvfEstimate(zone="z")
    assert est3.consistent() is None


# ----------------------------------------------------------------------
# scrubbing model
# ----------------------------------------------------------------------
def make_model():
    # 256 words x 39 bits, 0.01 FIT/bit — the paper-scale array
    return ScrubModel(words=256, word_bits=39, bit_fit=0.01)


def test_double_error_probability_monotonic():
    model = make_model()
    p1 = model.double_error_probability(10.0)
    p2 = model.double_error_probability(1000.0)
    assert 0 <= p1 < p2 <= 1


def test_uncorrectable_fit_decreases_with_scrubbing():
    model = make_model()
    fast = model.uncorrectable_fit(1.0)       # hourly scrub
    slow = model.uncorrectable_fit(10000.0)   # ~yearly
    assert fast < slow


def test_scrubbing_beats_no_scrubbing():
    model = make_model()
    mission = 20000.0  # ~automotive lifetime hours
    rows = scrub_benefit_table(model, mission, [1.0, 24.0, 720.0])
    assert all(r["improvement"] > 1.0 for r in rows)
    # faster scrubbing -> bigger improvement
    improvements = [r["improvement"] for r in rows]
    assert improvements == sorted(improvements, reverse=True)


def test_required_interval_meets_target():
    model = make_model()
    target = 1e-4
    interval = model.required_interval(target)
    assert model.uncorrectable_fit(interval) <= target * 1.01


def test_required_interval_unreachable():
    model = ScrubModel(words=10**9, word_bits=128, bit_fit=100.0)
    with pytest.raises(ValueError):
        model.required_interval(1e-12)


def test_invalid_interval():
    with pytest.raises(ValueError):
        make_model().uncorrectable_fit(0)


@given(st.floats(min_value=0.1, max_value=1e5))
@settings(max_examples=30)
def test_double_error_probability_valid(interval):
    p = make_model().double_error_probability(interval)
    assert 0.0 <= p <= 1.0


def test_small_mu_quadratic_approximation():
    model = make_model()
    t = 1.0
    mu = model.word_rate_per_hour * t
    approx = mu * mu / 2
    assert model.double_error_probability(t) == \
        pytest.approx(approx, rel=0.01)


def test_monte_carlo_agrees_with_model():
    # exaggerate the rate so doubles are observable in 20k trials
    model = ScrubModel(words=1, word_bits=39, bit_fit=2e6)
    result = simulate_accumulation(model, interval_hours=1.0,
                                   trials=20000, seed=9)
    assert result.modeled_probability > 1e-3
    assert result.agrees(), (result.measured_probability,
                             result.modeled_probability)


def test_sweep_series():
    model = make_model()
    series = model.sweep([1, 10, 100])
    assert len(series) == 3
    fits = [fit for _, fit in series]
    assert fits == sorted(fits)
    assert not any(math.isnan(f) for f in fits)


# ----------------------------------------------------------------------
# SET derating (paper §3's glitch-masking remark)
# ----------------------------------------------------------------------
def test_set_derating_measurement(setup):
    from repro.analysis import derated_gate_fit, measure_set_derating
    from repro.soc import validation_workload
    sub, env, _ = setup
    result = measure_set_derating(
        sub.circuit, env.stimuli, samples=80, seed=5,
        setup=lambda s: sub.preload(s, {}))
    assert result.injections == 80
    # most glitches are masked (logical + latch-window masking), but
    # a meaningful fraction becomes soft errors
    assert 0.02 < result.latch_fraction < 0.9
    assert result.observe_fraction <= result.latch_fraction + 1e-9
    derated = derated_gate_fit(0.01, result)
    assert derated == pytest.approx(0.01 * result.latch_fraction)
    assert "SET derating" in result.summary()


def test_set_derating_requires_workload(setup):
    from repro.analysis import measure_set_derating
    sub, _, _ = setup
    with pytest.raises(ValueError):
        measure_set_derating(sub.circuit, [], samples=5)


def test_derating_deterministic(setup):
    from repro.analysis import measure_set_derating
    sub, env, _ = setup
    kw = dict(samples=40, seed=9,
              setup=lambda s: sub.preload(s, {}))
    a = measure_set_derating(sub.circuit, env.stimuli, **kw)
    b = measure_set_derating(sub.circuit, env.stimuli, **kw)
    assert a.latched == b.latched and a.observed == b.observed
