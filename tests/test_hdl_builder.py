"""Unit and property tests for the builder DSL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, NetlistError, Simulator


def eval_comb(build, inputs):
    """Build a 1-output combinational module and evaluate once."""
    m = Module("t")
    outs = build(m)
    m.output("y", outs)
    sim = Simulator(m.build())
    sim.step_eval(inputs)
    return sim.output("y")


# ----------------------------------------------------------------------
# bitwise operators match Python semantics
# ----------------------------------------------------------------------
@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=40)
def test_and_or_xor_invert(a, b):
    m = Module("t")
    va = m.input("a", 8)
    vb = m.input("b", 8)
    m.output("and_", va & vb)
    m.output("or_", va | vb)
    m.output("xor_", va ^ vb)
    m.output("inv", ~va)
    m.output("nand_", va.nand(vb))
    m.output("nor_", va.nor(vb))
    m.output("xnor_", va.xnor(vb))
    sim = Simulator(m.build())
    sim.step_eval({"a": a, "b": b})
    assert sim.output("and_") == a & b
    assert sim.output("or_") == a | b
    assert sim.output("xor_") == a ^ b
    assert sim.output("inv") == (~a) & 0xFF
    assert sim.output("nand_") == (~(a & b)) & 0xFF
    assert sim.output("nor_") == (~(a | b)) & 0xFF
    assert sim.output("xnor_") == (~(a ^ b)) & 0xFF


@given(st.integers(0, 255))
@settings(max_examples=30)
def test_reductions(a):
    m = Module("t")
    va = m.input("a", 8)
    m.output("rand", va.reduce_and())
    m.output("ror", va.reduce_or())
    m.output("rxor", va.reduce_xor())
    m.output("zero", va.is_zero())
    sim = Simulator(m.build())
    sim.step_eval({"a": a})
    assert sim.output("rand") == (1 if a == 0xFF else 0)
    assert sim.output("ror") == (1 if a else 0)
    assert sim.output("rxor") == bin(a).count("1") % 2
    assert sim.output("zero") == (1 if a == 0 else 0)


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=30)
def test_eq_ne(a, b):
    m = Module("t")
    va = m.input("a", 8)
    vb = m.input("b", 8)
    m.output("eq", va.eq(vb))
    m.output("ne", va.ne(vb))
    sim = Simulator(m.build())
    sim.step_eval({"a": a, "b": b})
    assert sim.output("eq") == int(a == b)
    assert sim.output("ne") == int(a != b)


def test_slicing_and_concat():
    m = Module("t")
    a = m.input("a", 8)
    m.output("low", a[0:4])
    m.output("high", a[4:8])
    m.output("bit7", a[7])
    m.output("swapped", m.cat(a[4:8], a[0:4]))
    sim = Simulator(m.build())
    sim.step_eval({"a": 0xA5})
    assert sim.output("low") == 0x5
    assert sim.output("high") == 0xA
    assert sim.output("bit7") == 1
    assert sim.output("swapped") == 0x5A


def test_mux_selects():
    m = Module("t")
    s = m.input("s", 1)
    a = m.input("a", 4)
    b = m.input("b", 4)
    m.output("y", m.mux(s, a, b))
    sim = Simulator(m.build())
    sim.step_eval({"s": 1, "a": 3, "b": 12})
    assert sim.output("y") == 3
    sim.step_eval({"s": 0, "a": 3, "b": 12})
    assert sim.output("y") == 12


def test_repeat_and_zext():
    m = Module("t")
    bit = m.input("b", 1)
    a = m.input("a", 3)
    m.output("rep", bit.repeat(4))
    m.output("ext", a.zext(6))
    sim = Simulator(m.build())
    sim.step_eval({"b": 1, "a": 0b101})
    assert sim.output("rep") == 0b1111
    assert sim.output("ext") == 0b101


def test_width_mismatch_raises():
    m = Module("t")
    a = m.input("a", 4)
    b = m.input("b", 5)
    with pytest.raises(NetlistError, match="width mismatch"):
        _ = a & b


def test_scalar_broadcast():
    m = Module("t")
    a = m.input("a", 4)
    en = m.input("en", 1)
    m.output("y", a & en)   # 1-bit broadcast against 4-bit
    sim = Simulator(m.build())
    sim.step_eval({"a": 0xF, "en": 1})
    assert sim.output("y") == 0xF
    sim.step_eval({"a": 0xF, "en": 0})
    assert sim.output("y") == 0


def test_int_coercion_in_ops():
    m = Module("t")
    a = m.input("a", 4)
    m.output("y", a ^ 0b1010)
    sim = Simulator(m.build())
    sim.step_eval({"a": 0b0110})
    assert sim.output("y") == 0b1100


# ----------------------------------------------------------------------
# registers
# ----------------------------------------------------------------------
def test_register_enable_and_reset():
    m = Module("t")
    d = m.input("d", 4)
    en = m.input("en", 1)
    rst = m.input("rst", 1)
    q = m.reg("r", d, en=en, rst=rst, init=0b0101)
    m.output("q", q)
    sim = Simulator(m.build())
    # init value visible before any clock
    sim.step_eval({"d": 0, "en": 0, "rst": 0})
    assert sim.output("q") == 0b0101
    sim.step_commit()
    # enable low: holds
    sim.step({"d": 0xF, "en": 0, "rst": 0})
    sim.step_eval({"d": 0, "en": 0, "rst": 0})
    assert sim.output("q") == 0b0101
    sim.step_commit()
    # enable high: captures
    sim.step({"d": 0xF, "en": 1, "rst": 0})
    sim.step_eval({"d": 0, "en": 0, "rst": 0})
    assert sim.output("q") == 0xF
    sim.step_commit()
    # sync reset returns to init
    sim.step({"d": 0x3, "en": 1, "rst": 1})
    sim.step_eval({"d": 0, "en": 0, "rst": 0})
    assert sim.output("q") == 0b0101


def test_feedback_register_requires_connect():
    m = Module("t")
    q = m.declare_reg("r", 2)
    m.output("q", q)
    with pytest.raises(NetlistError, match="unconnected registers"):
        m.build()


def test_connect_reg_twice_fails():
    m = Module("t")
    a = m.input("a", 2)
    q = m.declare_reg("r", 2)
    m.connect_reg(q, a)
    with pytest.raises(NetlistError, match="not pending"):
        m.connect_reg(q, a)


def test_duplicate_ports_fail():
    m = Module("t")
    m.input("a", 1)
    with pytest.raises(NetlistError, match="duplicate input"):
        m.input("a", 1)
    v = m.const(0, 1)
    m.output("y", v)
    with pytest.raises(NetlistError, match="duplicate output"):
        m.output("y", v)


def test_named_probe_nets():
    m = Module("t")
    a = m.input("a", 2)
    with m.scope("blk"):
        probed = (a ^ 0b11).named("probe")
    m.output("y", probed)
    c = m.build()
    assert c.find_net("blk/probe[0]") >= 0


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("expr,expected", [
    (lambda m, a: a & m.const(0, 4), 0),
    (lambda m, a: a & m.const(0xF, 4), 0b0110),
    (lambda m, a: a | m.const(0xF, 4), 0xF),
    (lambda m, a: a ^ m.const(0, 4), 0b0110),
    (lambda m, a: a ^ m.const(0xF, 4), 0b1001),
    (lambda m, a: a & a, 0b0110),
    (lambda m, a: a ^ a, 0),
])
def test_fold_results_correct(expr, expected):
    m = Module("t")
    a = m.input("a", 4)
    m.output("y", expr(m, a))
    sim = Simulator(m.build())
    sim.step_eval({"a": 0b0110})
    assert sim.output("y") == expected


def test_fold_reduces_gate_count():
    m1 = Module("folded")
    a1 = m1.input("a", 8)
    m1.output("y", a1 & m1.const(0xFF, 8))
    folded = m1.build().gate_count()
    assert folded == 0  # AND with all-ones folds away entirely


def test_fold_mux_identity_arms():
    m = Module("t")
    s = m.input("s", 1)
    m.output("as_sel", m.mux(s, m.const(1, 1), m.const(0, 1)))
    m.output("as_inv", m.mux(s, m.const(0, 1), m.const(1, 1)))
    sim = Simulator(m.build())
    for sv in (0, 1):
        sim.step_eval({"s": sv})
        assert sim.output("as_sel") == sv
        assert sim.output("as_inv") == 1 - sv


# ----------------------------------------------------------------------
# forward references
# ----------------------------------------------------------------------
def test_forward_resolve_roundtrip():
    m = Module("t")
    a = m.input("a", 4)
    fwd = m.forward("later", 4)
    y = a ^ fwd                     # use before the driver exists
    m.output("y", y)
    m.resolve(fwd, a & m.const(0b1100, 4))
    sim = Simulator(m.build())
    sim.step_eval({"a": 0b1010})
    assert sim.output("y") == 0b1010 ^ (0b1010 & 0b1100)


def test_unresolved_forward_fails_build():
    m = Module("t")
    fwd = m.forward("never", 2)
    m.output("y", fwd)
    with pytest.raises(NetlistError, match="unresolved forwards"):
        m.build()


def test_forward_width_mismatch():
    m = Module("t")
    fwd = m.forward("w", 3)
    with pytest.raises(NetlistError, match="width mismatch"):
        m.resolve(fwd, m.const(0, 2))


def test_resolve_twice_fails():
    m = Module("t")
    fwd = m.forward("x", 1)
    m.resolve(fwd, m.const(0, 1))
    with pytest.raises(NetlistError, match="not forward-declared"):
        m.resolve(fwd, m.const(1, 1))


def test_forward_cannot_hide_comb_loop():
    m = Module("t")
    a = m.input("a", 1)
    fwd = m.forward("loop", 1)
    y = a & fwd
    m.resolve(fwd, y)               # y depends on fwd depends on y
    m.output("y", y)
    with pytest.raises(NetlistError, match="cycle"):
        m.build()
