"""Tests for the mini CPU and its lock-step protection."""

import pytest

from repro.faultinjection import (
    CandidateList,
    FaultInjectionManager,
    SeuFault,
    StuckNetFault,
)
from repro.soc.minicpu import (
    CpuConfig,
    MiniCpu,
    OP_LDI,
    assemble,
)
from repro.zones import ZoneKind, extract_zones


@pytest.fixture(scope="module")
def cpu():
    return MiniCpu(CpuConfig.plain())


@pytest.fixture(scope="module")
def lockstep():
    return MiniCpu(CpuConfig.lockstep_pair())


# ----------------------------------------------------------------------
# assembler
# ----------------------------------------------------------------------
def test_assemble_encodings():
    words = assemble([("nop",), ("ldi", 5), ("out",), 0xAB])
    assert words == [0x00, (OP_LDI << 5) | 5, 0b111_00000, 0xAB]


def test_assemble_rejects_bad_operand():
    with pytest.raises(ValueError):
        assemble([("ldi", 32)])


# ----------------------------------------------------------------------
# ISA semantics
# ----------------------------------------------------------------------
def test_ldi_and_out(cpu):
    _, outs = cpu.execute([("ldi", 21), ("out",), ("jnz", 2)],
                          cycles=30)
    assert outs[0] == 21


def test_store_and_load(cpu):
    prog = [("ldi", 9), ("st", 4), ("ldi", 0), ("ld", 4), ("out",),
            ("ldi", 1), ("jnz", 5)]
    _, outs = cpu.execute(prog, cycles=60)
    assert outs[0] == 9


def test_add(cpu):
    prog = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
            ("ldi", 1), ("jnz", 5)]
    _, outs = cpu.execute(prog, cycles=60)
    assert outs[0] == 8


def test_xor(cpu):
    prog = [("ldi", 0b10101), ("st", 0), ("ldi", 0b01111),
            ("xor", 0), ("out",), ("ldi", 1), ("jnz", 5)]
    _, outs = cpu.execute(prog, cycles=60)
    assert outs[0] == 0b11010


def test_jnz_taken_and_not_taken(cpu):
    # ACC=0: fall through to OUT(0); then ACC=7 jumps over the trap
    prog = [("ldi", 0), ("jnz", 5), ("ldi", 7), ("jnz", 6),
            ("nop",), ("out",), ("out",), ("ldi", 1), ("jnz", 7)]
    _, outs = cpu.execute(prog, cycles=80)
    assert outs[0] == 7


def test_data_preload(cpu):
    prog = [("ld", 3), ("out",), ("ldi", 1), ("jnz", 2)]
    _, outs = cpu.execute(prog, data=[0, 0, 0, 42] + [0] * 28,
                          cycles=40)
    assert outs[0] == 42


def test_accumulating_loop(cpu):
    # sum 1..4 by looping: mem[1]=counter, mem[2]=sum... simplified:
    # repeatedly ADD a constant and OUT each value
    prog = [("ldi", 1), ("st", 1), ("ldi", 6), ("st", 2),
            ("ld", 2), ("out",), ("add", 1), ("st", 2),
            ("ld", 2), ("xor", 3), ("jnz", 4), ("out",)]
    _, outs = cpu.execute(prog, data=[0, 0, 0, 10] + [0] * 28,
                          cycles=220)
    assert outs[:5] == [6, 7, 8, 9, 0]


def test_wrong_coding_fault_changes_execution(cpu):
    """The IEC 'wrong coding or wrong execution' failure mode: a stuck
    opcode bit turns instructions into different ones."""
    sim = cpu.simulator([("ldi", 5), ("out",), ("ldi", 1),
                         ("jnz", 2)])
    rom = cpu.circuit.memories[0]
    golden = MiniCpu.run  # run the clean program elsewhere
    _, clean = cpu.execute([("ldi", 5), ("out",), ("ldi", 1),
                            ("jnz", 2)], cycles=40)
    sim.stick_net(rom.rdata[7], 0)  # opcode MSB stuck: OUT -> NOP/LDI
    corrupted = cpu.run(sim, 40)
    assert corrupted != clean
    _ = golden


# ----------------------------------------------------------------------
# lock-step behaviour
# ----------------------------------------------------------------------
PROG = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
        ("ldi", 0), ("jnz", 0), ("out",)]


def test_lockstep_silent_when_healthy(lockstep):
    sim, outs = lockstep.execute(PROG, cycles=60)
    assert outs and outs[0] == 8
    assert sim.output("alarm_lockstep") == 0


def test_lockstep_catches_master_seu(lockstep):
    sim = lockstep.simulator(PROG)
    sim.schedule_flop_flip("core_a/acc[0]", cycle=8)
    outs = lockstep.run(sim, 60)
    assert sim.output("alarm_lockstep") == 1
    assert outs[0] != 8  # the corruption was real, and flagged


def test_lockstep_catches_checker_seu(lockstep):
    """Faults in the shadow core also flag (no silent checker death)."""
    sim = lockstep.simulator(PROG)
    sim.schedule_flop_flip("core_b/pc[1]", cycle=6)
    lockstep.run(sim, 60)
    assert sim.output("alarm_lockstep") == 1


def test_lockstep_alarm_sticky(lockstep):
    sim = lockstep.simulator(PROG)
    sim.schedule_flop_flip("core_a/acc[2]", cycle=8)
    lockstep.run(sim, 10)
    assert sim.output("alarm_lockstep") == 1
    for _ in range(30):            # keep running without a new reset
        sim.step(lockstep.idle())
    sim.step_eval(lockstep.idle())
    assert sim.output("alarm_lockstep") == 1


# ----------------------------------------------------------------------
# measured diagnostic coverage of lock-step (IEC table A.4: 'high')
# ----------------------------------------------------------------------
def _cpu_campaign(cpu, machines_zone_kind=ZoneKind.REGISTER):
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 80
    faults = []
    core_a_flops = [f.name for f in cpu.circuit.flops
                    if f.name.startswith("core_a/")]
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    for i, flop in enumerate(core_a_flops):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=6 + (i % 9)))
        faults.append(StuckNetFault(
            target=flop, zone=zone_of[flop], value=i % 2))
    manager = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom", assemble(PROG)))
    return manager.run(CandidateList(faults=faults))


def test_lockstep_measured_dc_is_high(cpu, lockstep):
    plain = _cpu_campaign(cpu)
    protected = _cpu_campaign(lockstep)
    dc_plain = plain.measured_dc()
    dc_protected = protected.measured_dc()
    # IEC table A.4: HW redundancy with comparison is a 'high'
    # technique — the measurement must clearly dominate the bare core
    assert dc_plain < 0.5
    assert dc_protected > 0.9
