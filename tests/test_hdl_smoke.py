"""Smoke tests for the HDL substrate (expanded per-module tests live in
test_hdl_netlist / test_hdl_builder / test_hdl_simulator)."""

from repro.hdl import Module, Simulator, library, roundtrip


def build_toy():
    m = Module("toy")
    a = m.input("a", 4)
    b = m.input("b", 4)
    rst = m.input("rst")
    with m.scope("dp"):
        s, carry = library.ripple_add(m, a, b)
        q = m.reg("acc", s, rst=rst)
    m.output("sum", q)
    m.output("cout", carry)
    return m.build()


def test_build_and_simulate():
    circ = build_toy()
    assert circ.gate_count() > 0
    assert circ.flop_count() == 4
    sim = Simulator(circ)
    sim.step({"a": 3, "b": 5, "rst": 0})
    # register captured 8 at the edge; visible after next eval
    sim.step({"a": 0, "b": 0, "rst": 0})
    assert sim.output("sum") == 8


def test_counter_and_memory():
    m = Module("memtoy")
    en = m.input("en")
    wdata = m.input("wdata", 8)
    we = m.input("we")
    addr = library.counter(m, "addr", 3, en=en)
    rdata = m.memory("ram", 8, 8, addr, wdata, we)
    m.output("rdata", rdata)
    m.output("addr", addr)
    circ = m.build()
    sim = Simulator(circ)
    # write 0xAB at address 0
    sim.step({"en": 0, "wdata": 0xAB, "we": 1})
    sim.step({"en": 0, "wdata": 0, "we": 0})
    sim.step({"en": 0, "wdata": 0, "we": 0})
    assert sim.output("rdata") == 0xAB
    assert sim.read_mem_word("ram", 0) == 0xAB


def test_parallel_fault_machines():
    circ = build_toy()
    sim = Simulator(circ, machines=3)
    # machine 1: stuck-at-0 on the acc[0] flop output
    q0 = circ.find_net("dp/acc[0]")
    sim.stick_net(q0, 0, machines=1 << 1)
    sim.step({"a": 1, "b": 0, "rst": 0})
    sim.step({"a": 0, "b": 0, "rst": 0})
    assert sim.output("sum", machine=0) == 1
    assert sim.output("sum", machine=1) == 0
    assert sim.output("sum", machine=2) == 1
    mism = sim.mismatch_mask(circ.outputs["sum"])
    assert mism == 1 << 1


def test_verilog_roundtrip():
    circ = build_toy()
    back = roundtrip(circ)
    assert back.gate_count() == circ.gate_count()
    assert back.flop_count() == circ.flop_count()
    sim_a, sim_b = Simulator(circ), Simulator(back)
    for stim in [{"a": 2, "b": 7, "rst": 0}, {"a": 9, "b": 9, "rst": 0},
                 {"a": 1, "b": 1, "rst": 1}]:
        sim_a.step(stim)
        sim_b.step(stim)
        assert sim_a.output("sum") == sim_b.output("sum")
