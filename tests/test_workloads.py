"""Tests for workload generators, phases and the AHB master."""

import pytest

from repro.hdl import Simulator
from repro.soc import (
    AhbMaster,
    MemorySubsystem,
    READ_LATENCY,
    SubsystemConfig,
    WRITE_GAP,
    Workload,
    app_profile,
    error_selftest,
    march_test,
    mpu_probe,
    random_traffic,
    scrub_exercise,
    startup_bist,
    validation_workload,
)
from repro.soc.workloads import Phase, bist_selftest


@pytest.fixture(scope="module")
def sub():
    return MemorySubsystem(SubsystemConfig.small_improved())


def golden_run(sub, workload, watch=()):
    sim = sub.simulator()
    seen = {name: [] for name in watch}
    for op in workload:
        sim.step_eval(op)
        for name in watch:
            seen[name].append(sim.output(name))
        sim.step_commit()
    return sim, seen


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
def test_phase_shifting():
    p = Phase("x", 3, 7, is_test=True)
    q = p.shifted(10)
    assert (q.start, q.end, q.is_test) == (13, 17, True)


def test_workload_concatenation_shifts_phases(sub):
    a = startup_bist(sub)
    b = march_test(sub, addresses=[0, 1])
    combined = a + b
    assert len(combined) == len(a) + len(b)
    assert len(combined.phases) == 2
    first, second = combined.phases
    assert first.start == 0 and first.end == len(a)
    assert second.start == len(a)
    assert second.end == len(combined)


def test_test_windows_cover_test_phases(sub):
    wl = validation_workload(sub, quick=True)
    windows = wl.test_windows()
    assert windows
    covered = sum(hi - lo for lo, hi in windows)
    assert 0 < covered <= len(wl)


def test_random_traffic_not_a_test_phase(sub):
    wl = random_traffic(sub, n_ops=5)
    assert wl.test_windows() == []


# ----------------------------------------------------------------------
# workload behaviours on the golden design
# ----------------------------------------------------------------------
def test_march_runs_clean(sub):
    wl = march_test(sub, addresses=range(4))
    sim, seen = golden_run(sub, wl, watch=("alarm_ue", "alarm_ce"))
    assert sum(seen["alarm_ue"]) == 0
    assert sum(seen["alarm_ce"]) == 0


def test_error_selftest_raises_ce_and_ue(sub):
    wl = error_selftest(sub)
    sim, seen = golden_run(sub, wl, watch=("alarm_ce", "alarm_ue"))
    assert sum(seen["alarm_ce"]) > 0     # every single-bit injection
    assert sum(seen["alarm_ue"]) > 0     # the final double injection


def test_error_selftest_walks_all_bits(sub):
    wl = error_selftest(sub)
    masks = {op["err_inject"] for op in wl if op.get("err_inject")}
    singles = {m for m in masks if m.bit_count() == 1}
    assert len(singles) == sub.cfg.word_bits


def test_bist_selftest_forces_fail(sub):
    wl = bist_selftest(sub)
    sim, seen = golden_run(sub, wl, watch=("alarm_bist", "bist_done"))
    assert seen["bist_done"][-1] == 1
    assert sum(seen["alarm_bist"]) > 0


def test_mpu_probe_blocks_and_allows(sub):
    wl = mpu_probe(sub)
    sim, seen = golden_run(sub, wl, watch=("alarm_mpu",))
    assert sum(seen["alarm_mpu"]) == sub.cfg.mpu_pages  # denied phase


def test_scrub_exercise_scans(sub):
    wl = scrub_exercise(sub, cycles=40)
    sim, _ = golden_run(sub, wl)
    value = sum(sim.flop_value(f"fmem/scrub/scan_cnt[{i}]") << i
                for i in range(sub.cfg.addr_bits))
    assert value > 0


def test_app_profile_exercises_mpu_and_scrub(sub):
    wl = app_profile(sub)
    sim, seen = golden_run(sub, wl, watch=("alarm_mpu",))
    assert sum(seen["alarm_mpu"]) > 0


def test_full_validation_workload_structure(sub):
    wl = validation_workload(sub, quick=False)
    names = [p.name for p in wl.phases]
    for expected in ("startup_bist", "march_c", "error_selftest",
                     "bist_selftest"):
        assert any(expected in n for n in names), expected


# ----------------------------------------------------------------------
# AHB master
# ----------------------------------------------------------------------
def test_master_write_gap_constant():
    assert WRITE_GAP >= 1
    assert READ_LATENCY == 2


def test_master_alarm_log(sub):
    master = AhbMaster(sub, mpu=0)
    master.reset()
    master.write(0, 1)
    assert ("alarm_mpu" in master.alarms_seen())
    assert all(isinstance(c, int) for c, _ in master.alarm_log)


def test_master_read_result_fields(sub):
    master = AhbMaster(sub)
    master.reset()
    master.write(2, 0x42)
    result = master.read(2)
    assert result.addr == 2
    assert result.valid
    assert result.data == 0x42
    assert set(result.alarms) == set(sub.alarm_outputs())
    assert not result.any_alarm


def test_master_bist_budget_exceeded():
    sub = MemorySubsystem(SubsystemConfig.small_baseline())
    master = AhbMaster(sub)
    master.reset()
    with pytest.raises(RuntimeError, match="BIST"):
        master.run_bist(max_cycles=3)


def test_workload_is_pure_data(sub):
    """Workloads must be replayable: plain dicts, no simulator state."""
    wl = validation_workload(sub, quick=True)
    sim1 = sub.simulator()
    sim2 = sub.simulator()
    for op in wl:
        assert isinstance(op, dict)
        sim1.step(op)
    for op in wl:
        sim2.step(op)
    for flop in range(len(sub.circuit.flops)):
        assert sim1._flop_state[flop] == sim2._flop_state[flop]


def test_address_decoder_test_catches_stuck_line(sub):
    """An address-line stuck-at between port mux and the array makes
    the marching-address read-back diverge from the golden run."""
    from repro.soc import address_decoder_test
    wl = address_decoder_test(sub)
    # golden vs faulty comparison through the parallel machines
    sim = Simulator(sub.circuit, machines=2)
    sub.preload(sim, {})
    mem = sub.circuit.memories[0]
    sim.stick_net(mem.addr[1], 0, machines=1 << 1)
    diverged = False
    for op in wl:
        sim.step_eval(op)
        if sim.mismatch_mask(sub.circuit.outputs["hrdata"]):
            diverged = True
        sim.step_commit()
    assert diverged


def test_address_decoder_test_clean_on_healthy_array(sub):
    from repro.soc import address_decoder_test
    wl = address_decoder_test(sub)
    _, seen = golden_run(sub, wl, watch=("alarm_ue", "alarm_ce"))
    assert sum(seen["alarm_ue"]) == 0 and sum(seen["alarm_ce"]) == 0
