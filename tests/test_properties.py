"""Cross-module property-based and exhaustive invariant tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import SecDedCode
from repro.fmea import (
    DiagnosticClaim,
    FitModel,
    build_worksheet,
    combine_coverage,
)
from repro.hdl import CompiledSimulator, Module, Simulator, \
    compile_circuit
from repro.iec61508 import FailureRates
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.zones import ZoneKind, extract_zones, predict_effects_table
from repro.faultinjection import (
    CandidateList,
    StuckNetFault,
    collapse,
    shard_candidates,
)


# ----------------------------------------------------------------------
# SEC-DED: exhaustive proof for a small code
# ----------------------------------------------------------------------
def test_secded_k4_exhaustive():
    """Every word, every single error corrected; every double error
    detected — checked exhaustively, not sampled."""
    code = SecDedCode(4)
    n = code.n
    for data in range(16):
        cw = code.codeword(data)
        res = code.decode_word(cw)
        assert res.data == data and not res.corrected
        for bit in range(n):
            res = code.decode_word(cw ^ (1 << bit))
            assert res.data == data
            assert res.corrected and not res.uncorrectable
        for b1, b2 in itertools.combinations(range(n), 2):
            res = code.decode_word(cw ^ (1 << b1) ^ (1 << b2))
            assert res.uncorrectable
            assert not res.corrected


@given(st.integers(2, 64))
def test_secded_column_distance(k):
    """Any two columns XOR to a non-column (no single/double alias)."""
    code = SecDedCode(k)
    cols = set(code.columns)
    for a, b in itertools.combinations(code.columns, 2):
        assert (a ^ b) != 0
        # even-weight XOR of two odd-weight columns: never aliases to a
        # (necessarily odd-weight) column signature
        assert (a ^ b) not in cols


# ----------------------------------------------------------------------
# λ-algebra properties
# ----------------------------------------------------------------------
# subnormal rates underflow to 0.0 under scaled(k<1), which flips the
# SFF/DC ratios to the empty-total convention — exclude them
_rate_st = st.floats(0, 1e4, allow_subnormal=False)
rates_st = st.builds(FailureRates, _rate_st, _rate_st, _rate_st)


@given(rates_st, rates_st)
def test_rate_addition_commutative(a, b):
    left, right = a + b, b + a
    assert left.lambda_s == right.lambda_s
    assert left.lambda_dd == right.lambda_dd
    assert left.lambda_du == right.lambda_du


@given(rates_st)
def test_rate_bounds(r):
    assert 0.0 <= r.sff <= 1.0
    assert 0.0 <= r.dc <= 1.0
    assert r.total >= r.lambda_d >= r.lambda_dd


@given(rates_st, st.floats(0.001, 100))
def test_sff_scale_invariant(r, k):
    """SFF and DC are ratios: scaling all rates never changes them."""
    scaled = r.scaled(k)
    assert scaled.sff == pytest.approx(r.sff, rel=1e-9, abs=1e-12)
    assert scaled.dc == pytest.approx(r.dc, rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# claim combination
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0, 1), max_size=5))
def test_combine_coverage_monotone_and_bounded(ddfs):
    claims = [DiagnosticClaim("cpu_hw_redundancy", d) for d in ddfs]
    combined = combine_coverage(claims)
    assert 0.0 <= combined <= 1.0
    for claim in claims:
        assert combined >= claim.effective_ddf - 1e-12
    # adding one more technique never reduces coverage
    more = combine_coverage(claims + [
        DiagnosticClaim("bus_parity", 0.5)])
    assert more >= combined - 1e-12


# ----------------------------------------------------------------------
# simulator metamorphic property: buffering is transparent
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_buffer_insertion_transparent(stimuli):
    def build(buffered):
        m = Module("t")
        a = m.input("a", 8)
        b = m.input("b", 8)
        x = a ^ b
        if buffered:
            x = x.named("probe1").named("probe2")  # two buffer layers
        q = m.reg("r", x & a)
        m.output("y", q)
        return m.build()

    plain, buffered = Simulator(build(False)), Simulator(build(True))
    for a, b in stimuli:
        plain.step({"a": a, "b": b})
        buffered.step({"a": a, "b": b})
        plain.step_eval({"a": 0, "b": 0})
        buffered.step_eval({"a": 0, "b": 0})
        assert plain.output("y") == buffered.output("y")
        plain.step_commit()
        buffered.step_commit()


# ----------------------------------------------------------------------
# zone extraction invariants
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def zone_set():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return extract_zones(sub.circuit, sub.extraction_config())


def test_every_flop_in_exactly_one_register_zone(zone_set):
    owner: dict[str, str] = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            assert flop not in owner, (flop, owner[flop], zone.name)
            owner[flop] = zone.name
    all_flops = {f.name for f in zone_set.circuit.flops}
    assert set(owner) == all_flops


def test_memory_regions_partition_the_array(zone_set):
    mem = zone_set.circuit.memories[0]
    covered = []
    for zone in zone_set.of_kind(ZoneKind.MEMORY):
        lo, hi = zone.mem_words
        covered.extend(range(lo, hi + 1))
    assert sorted(covered) == list(range(mem.depth))


def test_zone_bits_accounting(zone_set):
    reg_bits = sum(z.size_bits
                   for z in zone_set.of_kind(ZoneKind.REGISTER))
    assert reg_bits == zone_set.circuit.flop_count()
    mem_bits = sum(z.size_bits
                   for z in zone_set.of_kind(ZoneKind.MEMORY))
    assert mem_bits == zone_set.circuit.memory_bits()


def test_main_effect_is_minimal(zone_set):
    table = predict_effects_table(zone_set)
    for pred in table.values():
        if not pred.effects:
            continue
        main = pred.main
        assert all(main.distance <= e.distance for e in pred.effects)


# ----------------------------------------------------------------------
# FIT conservation through the worksheet
# ----------------------------------------------------------------------
@given(st.floats(0.0001, 0.1), st.floats(0.0001, 0.1),
       st.floats(0.0001, 0.1))
@settings(max_examples=10, deadline=None)
def test_worksheet_fit_conservation(gate_fit, flop_fit, mem_fit):
    sub = MemorySubsystem(SubsystemConfig.small_baseline())
    zone_set = extract_zones(sub.circuit, sub.extraction_config())
    fit = FitModel(gate_transient_fit=gate_fit,
                   flop_transient_fit=flop_fit,
                   membit_transient_fit=mem_fit)
    sheet = build_worksheet(zone_set, fit_model=fit)
    expected = 0.0
    included = {e.zone for e in sheet.entries}
    for zone in zone_set.zones:
        if zone.name in included:
            t, p = fit.zone_fit(zone)
            expected += t + p
    assert sheet.totals().total == pytest.approx(expected, rel=1e-9)


# ----------------------------------------------------------------------
# fault-list invariants
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(0, 1)), max_size=20))
def test_collapse_idempotent(pairs):
    faults = [StuckNetFault(target=t, value=v) for t, v in pairs]
    once = collapse(CandidateList(faults=faults))
    twice = collapse(once)
    assert [f.name for f in once.faults] == \
        [f.name for f in twice.faults]
    assert len({f.name for f in once.faults}) == len(once.faults)


# ----------------------------------------------------------------------
# campaign sharding invariants
# ----------------------------------------------------------------------
def _numbered_faults(n):
    return [StuckNetFault(target=f"net{i}", value=i % 2)
            for i in range(n)]


@given(st.integers(0, 200), st.integers(1, 8))
@settings(deadline=None)
def test_sharding_partitions_the_fault_list(n, shards):
    """Shards are a partition: no fault lost, none duplicated, order
    preserved, and sizes balanced to within one fault."""
    faults = _numbered_faults(n)
    batches = shard_candidates(faults, shards)
    merged = [fault for batch in batches for fault in batch]
    assert merged == faults
    assert len(batches) == (min(shards, n) or 1)
    sizes = [len(batch) for batch in batches]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(0, 120))
@settings(deadline=None)
def test_shard_merge_order_independent_of_worker_count(n):
    """Concatenating shards in shard order reproduces the candidate
    order for *every* worker count — the invariant that makes the
    parallel campaign's per-fault ordering equal to the serial run."""
    faults = _numbered_faults(n)
    reference = [fault.name for fault in faults]
    for shards in range(1, 10):
        merged = [fault.name
                  for batch in shard_candidates(faults, shards)
                  for fault in batch]
        assert merged == reference


def test_sharding_rejects_nonpositive_counts():
    with pytest.raises(ValueError):
        shard_candidates(_numbered_faults(3), 0)


# ----------------------------------------------------------------------
# lane-width invariants: 63 / 64 / 65 machines
# ----------------------------------------------------------------------
# The compiled engine packs machines into uint64 lanes; 63, 64 and 65
# bracket the word boundary (last bit of one word, exactly one word,
# first bit of the next word).  Both engines must agree regardless of
# where the faulty machine lands relative to that boundary.
def _lane_circuit():
    m = Module("lane")
    a = m.input("a", 4)
    b = m.input("b", 4)
    q = m.reg("r", a ^ b, rst=m.input("rst", 1)[0])
    m.output("y", q & a)
    m.output("z", q.nor(a))
    return m.build()


@pytest.mark.parametrize("machines", [63, 64, 65])
def test_lane_width_engines_bit_identical(machines):
    circuit = _lane_circuit()
    isim = Simulator(circuit, machines=machines)
    csim = CompiledSimulator(compile_circuit(circuit),
                             machines=machines)
    full = (1 << machines) - 1
    victim = circuit.inputs["a"][0]
    # fault the top machine (straddles the word boundary at 65) and
    # machine 1 (always in word 0)
    for sim in (isim, csim):
        sim.stick_net(victim, 1, machines=1 << (machines - 1))
        sim.stick_net(circuit.inputs["b"][1], 0, machines=1 << 1)
    for cyc in range(6):
        stim = {"a": (3 * cyc) % 16, "b": (7 - cyc) % 16,
                "rst": 1 if cyc == 0 else 0}
        isim.step_eval(stim)
        csim.step_eval(stim)
        for net in range(circuit.num_nets):
            assert (isim.peek(net) & full) == csim.peek(net), \
                (machines, cyc, net)
        isim.step_commit()
        csim.step_commit()


@pytest.mark.parametrize("machines", [63, 64, 65])
def test_lane_width_mismatch_confined_to_faulty_machine(machines):
    """A fault armed on machine m can only ever raise mismatch bits of
    machine m — no leakage across the uint64 word boundary."""
    circuit = _lane_circuit()
    nets = list(range(circuit.num_nets))
    for m in (1, machines - 1):
        for sim in (Simulator(circuit, machines=machines),
                    CompiledSimulator(compile_circuit(circuit),
                                      machines=machines)):
            sim.stick_net(circuit.inputs["a"][2], 1, machines=1 << m)
            for cyc in range(4):
                sim.step({"a": 0, "b": 5, "rst": 1 if cyc == 0 else 0})
                assert sim.mismatch_mask(nets) & ~(1 << m) == 0, \
                    (machines, m, cyc)
