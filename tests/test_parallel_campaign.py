"""Differential tests: the sharded parallel campaign runner must be
bit-identical to the serial :class:`FaultInjectionManager` path.

The safety metrics (DC, SFF) extracted from a campaign are only
trustworthy if distributing the faults over worker processes cannot
shift them — so every worker count is checked against the serial
reference fault by fault, not just in aggregate.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.faultinjection import (
    CampaignConfig,
    CampaignResult,
    CampaignSpec,
    CandidateList,
    FaultInjectionManager,
    MemoryImageSetup,
    ParallelCampaignRunner,
    SeuFault,
    StuckNetFault,
    build_environment,
    compute_golden_trace,
    run_shard,
    shard_candidates,
    snapshot_setup,
)
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.zones import ZoneKind, extract_zones

DATA = Path(__file__).parent / "data"


# ----------------------------------------------------------------------
# fmem (memory subsystem) campaign
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


@pytest.fixture(scope="module")
def candidates(env):
    return env.candidates()


@pytest.fixture(scope="module")
def serial(env, candidates):
    return env.manager(CampaignConfig()).run(candidates)


def _fault_rows(campaign):
    """The full per-fault record, in result order."""
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fmem_parallel_equals_serial(env, candidates, serial, workers):
    runner = ParallelCampaignRunner(env.spec(), workers=workers)
    campaign = runner.run(candidates)
    assert campaign.outcomes() == serial.outcomes()
    assert campaign.measured_dc() == serial.measured_dc()
    assert campaign.measured_safe_fraction() == \
        serial.measured_safe_fraction()
    assert _fault_rows(campaign) == _fault_rows(serial)


def test_fmem_parallel_coverage_equals_serial(env, candidates, serial):
    campaign = ParallelCampaignRunner(env.spec(), workers=2) \
        .run(candidates)
    assert campaign.coverage.sens == serial.coverage.sens
    assert campaign.coverage.obse == serial.coverage.obse
    assert campaign.coverage.diag == serial.coverage.diag
    assert campaign.coverage.mismatches == serial.coverage.mismatches
    assert campaign.coverage.injections == serial.coverage.injections


def test_shard_count_does_not_change_results(env, candidates, serial):
    # more shards than workers: shard order, not completion order,
    # must drive the merge
    runner = ParallelCampaignRunner(env.spec(), workers=2, shards=7)
    campaign = runner.run(candidates)
    assert _fault_rows(campaign) == _fault_rows(serial)


# ----------------------------------------------------------------------
# minicpu campaign
# ----------------------------------------------------------------------
PROG = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
        ("xor", 0), ("st", 1), ("ld", 1), ("out",), ("jnz", 0)]


@pytest.fixture(scope="module")
def cpu_setup():
    cpu = MiniCpu(CpuConfig.plain())
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 40
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    flops = [f.name for f in cpu.circuit.flops
             if f.name in zone_of][:8]
    faults = []
    for i, flop in enumerate(flops):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=5 + (i % 7)))
        faults.append(StuckNetFault(target=flop, zone=zone_of[flop],
                                    value=i % 2))
    spec = CampaignSpec.from_zone_set(
        cpu.circuit, stimuli, zone_set,
        setup=MemoryImageSetup(
            mem_images={"imem/rom": assemble(PROG)}))
    return cpu, zone_set, stimuli, CandidateList(faults=faults), spec


@pytest.fixture(scope="module")
def cpu_serial(cpu_setup):
    cpu, zone_set, stimuli, candidates, _ = cpu_setup
    manager = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom", assemble(PROG)))
    return manager.run(candidates)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_minicpu_parallel_equals_serial(cpu_setup, cpu_serial, workers):
    *_, candidates, spec = cpu_setup
    campaign = ParallelCampaignRunner(spec, workers=workers) \
        .run(candidates)
    assert campaign.outcomes() == cpu_serial.outcomes()
    assert campaign.measured_dc() == cpu_serial.measured_dc()
    assert campaign.measured_safe_fraction() == \
        cpu_serial.measured_safe_fraction()
    assert _fault_rows(campaign) == _fault_rows(cpu_serial)


# ----------------------------------------------------------------------
# spec / setup picklability
# ----------------------------------------------------------------------
def test_campaign_spec_round_trips_through_pickle(env, candidates,
                                                  serial):
    spec = pickle.loads(pickle.dumps(env.spec()))
    shard = list(candidates.faults[:12])
    out = run_shard(spec, shard)
    assert [r.fault.name for r in out.results] == \
        [f.name for f in shard]
    assert _fault_rows(out) == _fault_rows(serial)[:12]


def test_snapshot_setup_captures_preload(env):
    snap = snapshot_setup(env.circuit, env.setup)
    assert isinstance(snap, MemoryImageSetup)
    assert "memarray/array" in snap.mem_images
    # the preload writes valid codewords, not an all-zero image
    assert any(snap.mem_images["memarray/array"])


def test_snapshot_setup_refuses_fault_overlays(env):
    with pytest.raises(ValueError):
        snapshot_setup(env.circuit,
                       lambda sim: sim.stick_net(0, 1))


# ----------------------------------------------------------------------
# golden-run cache
# ----------------------------------------------------------------------
def test_golden_trace_matches_serial_coverage(env, serial):
    trace = compute_golden_trace(env.manager(CampaignConfig()))
    assert trace.cycles == len(env.stimuli)
    # the validation workload reads data back, so the functional bus
    # output toggles in the fault-free run
    assert "hrdata" in trace.obse_active
    # every item the shared trace credits to workload activity is also
    # credited by the serial campaign's per-pass golden bookkeeping
    assert all(serial.coverage.obse[name]
               for name in trace.obse_active)
    assert all(serial.coverage.diag[name]
               for name in trace.diag_active)
    # and it is deterministic: recomputing yields the same bits
    again = compute_golden_trace(env.manager(CampaignConfig()))
    assert again.obse_active == trace.obse_active
    assert again.diag_active == trace.diag_active


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_runner_stats_and_progress(env, candidates):
    seen = []
    runner = ParallelCampaignRunner(
        env.spec(), workers=2,
        progress=lambda done, total: seen.append((done, total)))
    campaign = runner.run(candidates)
    total = len(candidates.faults)
    assert seen and seen[-1] == (total, total)
    assert [done for done, _ in seen] == \
        sorted(done for done, _ in seen)
    stats = runner.last_stats
    assert stats is not None
    assert sum(s.faults for s in stats.shards) == total
    assert all(s.wall_seconds >= 0 for s in stats.shards)
    assert stats.total_faults == len(campaign.results)
    assert "worker" in stats.summary()


def test_shard_stats_in_serial_fallback(env, candidates):
    runner = ParallelCampaignRunner(env.spec(), workers=1)
    runner.run(candidates)
    assert len(runner.last_stats.shards) == 1
    assert runner.last_stats.shards[0].faults == len(candidates.faults)


# ----------------------------------------------------------------------
# empty campaigns (regression: metrics must not divide by zero)
# ----------------------------------------------------------------------
def test_empty_campaign_metrics_are_zero(env):
    campaign = env.manager(CampaignConfig()).run(CandidateList())
    assert campaign.results == []
    assert campaign.measured_dc() == 0.0
    assert campaign.measured_safe_fraction() == 0.0
    assert CampaignResult().measured_dc() == 0.0
    assert CampaignResult().measured_safe_fraction() == 0.0


def test_empty_campaign_through_runner(env):
    campaign = ParallelCampaignRunner(env.spec(), workers=4) \
        .run(CandidateList())
    assert campaign.results == []
    assert campaign.measured_dc() == 0.0
    assert campaign.measured_safe_fraction() == 0.0


# ----------------------------------------------------------------------
# golden-file regression: the fmem campaign summary is frozen
# ----------------------------------------------------------------------
def campaign_summary(campaign) -> dict:
    """The committed snapshot view of a campaign."""
    return {
        "injections": len(campaign.results),
        "outcomes": campaign.outcomes(),
        "measured_dc": round(campaign.measured_dc(), 12),
        "measured_safe_fraction": round(
            campaign.measured_safe_fraction(), 12),
        "per_fault_outcomes": [
            [res.fault.name, campaign.outcome_of(res)]
            for res in campaign.results],
    }


def test_fmem_campaign_matches_golden_file(serial):
    expected = json.loads(
        (DATA / "fmem_small_campaign.json").read_text())
    assert campaign_summary(serial) == expected
