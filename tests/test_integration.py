"""Paper-size integration tests: the full flow at 32-bit/256-word scale.

These are the E2/E3 headline numbers as regression tests, plus proof
that the injection machinery works at the paper's design size (the
benchmarks do the timing; here we only trim the campaign for test
runtime).
"""

import pytest

from repro.faultinjection import (
    CampaignConfig,
    FaultListConfig,
    ResultAnalyzer,
    build_environment,
    randomize,
)
from repro.fmea import rank_zones, stability_report
from repro.hdl import roundtrip
from repro.iec61508 import SIL, max_sil
from repro.soc import MemorySubsystem, SubsystemConfig


@pytest.fixture(scope="module")
def baseline():
    return MemorySubsystem(SubsystemConfig.baseline())


@pytest.fixture(scope="module")
def improved():
    return MemorySubsystem(SubsystemConfig.improved())


def test_paper_zone_count(improved):
    zone_set = improved.extract_zones()
    assert 120 <= len(zone_set) <= 220


def test_paper_baseline_sff(baseline):
    sff = baseline.worksheet().totals().sff
    assert 0.92 <= sff < 0.99            # "around 95%", below SIL3
    assert max_sil(sff, hft=0) is SIL.SIL2


def test_paper_improved_sff(improved):
    sff = improved.worksheet().totals().sff
    assert sff >= 0.99                    # SIL3
    assert abs(sff - 0.9938) < 0.005      # close to the paper value
    assert max_sil(sff, hft=0) is SIL.SIL3


def test_paper_improved_stability(improved):
    report = stability_report(improved.worksheet())
    assert report.min_sff >= 0.99


def test_paper_ranking_names_the_culprits(baseline):
    top = " ".join(r.zone for r in rank_zones(baseline.worksheet(),
                                              top=25))
    assert "fmem/wbuf" in top
    assert "fmem/decoder" in top
    assert "memctrl/latch" in top


def test_paper_size_campaign_runs(improved):
    """A trimmed injection campaign at full design size."""
    env = build_environment(improved, quick=True)
    candidates = randomize(
        env.candidates(FaultListConfig(transient_per_zone=1,
                                       permanent_per_zone=1)),
        sample=24, seed=3)
    campaign = env.manager(
        CampaignConfig(max_cycles=600)).run(candidates)
    assert len(campaign.results) == 24
    counts = campaign.outcomes()
    assert sum(counts.values()) == 24
    analyzer = ResultAnalyzer(campaign)
    assert analyzer.zone_measurements()


def test_paper_size_verilog_roundtrip(improved):
    back = roundtrip(improved.circuit)
    assert back.gate_count() == improved.circuit.gate_count()
    assert back.flop_count() == improved.circuit.flop_count()
    assert len(back.memories) == 1


def test_paper_size_csv_export(improved, tmp_path):
    sheet = improved.worksheet()
    path = tmp_path / "improved.csv"
    sheet.save_csv(path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(sheet) + 1


def test_variants_share_interface(baseline, improved):
    """Baseline ports are a subset of improved ports (drop-in)."""
    assert set(baseline.circuit.inputs) == set(improved.circuit.inputs)
    assert set(baseline.circuit.outputs) <= \
        set(improved.circuit.outputs)
