"""Differential acceptance tests for the campaign store.

A cached, resumed or incremental campaign must be *bit-identical* to a
cold serial :class:`FaultInjectionManager` run over the same inputs —
same per-fault records, same outcome counts, same measured DC and safe
fraction, same coverage bits — for every worker count.  A warm rerun
must additionally perform **zero** fault simulations.
"""

import copy

import pytest

from repro.faultinjection import (
    CampaignConfig,
    CandidateList,
    FaultInjectionManager,
    ParallelCampaignRunner,
    SeuFault,
    StuckNetFault,
    build_environment,
)
from repro.hdl.netlist import OP_AND, OP_OR
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.store import CampaignCache, FingerprintContext, diff_runs
from repro.zones import ZoneKind, extract_zones

#: the incremental test flips this OR gate to AND — it sits inside the
#: BIST datapath, so most (but not all) fault cones contain it and a
#: handful of faults genuinely change outcome class
MUTATED_GATE = "memctrl/bist/t28"


# ----------------------------------------------------------------------
# fmem (memory subsystem)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


@pytest.fixture(scope="module")
def candidates(env):
    return env.candidates()


@pytest.fixture(scope="module")
def serial(env, candidates):
    return env.manager(CampaignConfig()).run(candidates)


def _fault_rows(campaign):
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


def _assert_identical(campaign, reference):
    assert _fault_rows(campaign) == _fault_rows(reference)
    assert campaign.outcomes() == reference.outcomes()
    assert campaign.measured_dc() == reference.measured_dc()
    assert campaign.measured_safe_fraction() == \
        reference.measured_safe_fraction()
    assert campaign.coverage.sens == reference.coverage.sens
    assert campaign.coverage.obse == reference.coverage.obse
    assert campaign.coverage.diag == reference.coverage.diag


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fmem_cached_equals_cold_serial(env, candidates, serial,
                                        workers, tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        runner = ParallelCampaignRunner(env.spec(), workers=workers,
                                        cache=cache)
        _assert_identical(runner.run(candidates), serial)
        assert cache.stats.misses == len(candidates.faults)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fmem_warm_rerun_simulates_nothing(env, candidates, serial,
                                           workers, tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        ParallelCampaignRunner(env.spec(), workers=workers,
                               cache=cache).run(candidates)

    with CampaignCache(tmp_path / "store") as cache:
        runner = ParallelCampaignRunner(env.spec(), workers=workers,
                                        cache=cache)
        campaign = runner.run(candidates)
        assert cache.stats.simulated == 0
        assert cache.stats.misses == 0
        assert cache.stats.hits == len(candidates.faults)
        assert cache.stats.hit_rate() == 1.0
        _assert_identical(campaign, serial)


def test_fmem_serial_manager_cached_path(env, candidates, serial,
                                         tmp_path):
    with CampaignCache(tmp_path / "store") as cache:
        manager = env.manager(CampaignConfig())
        _assert_identical(manager.run(candidates, cache=cache), serial)
        warm = env.manager(CampaignConfig()).run(candidates,
                                                 cache=cache)
        _assert_identical(warm, serial)
        assert cache.stats.simulated == len(candidates.faults)
        assert cache.stats.hits == len(candidates.faults)


def test_store_is_portable_across_entry_points(env, candidates, serial,
                                               tmp_path):
    """Outcomes written by the parallel runner are served to the
    serial manager (and vice versa): the content address does not
    depend on which engine produced the record."""
    with CampaignCache(tmp_path / "store") as cache:
        ParallelCampaignRunner(env.spec(), workers=2,
                               cache=cache).run(candidates)
    with CampaignCache(tmp_path / "store") as cache:
        campaign = env.manager(CampaignConfig()).run(candidates,
                                                     cache=cache)
        assert cache.stats.simulated == 0
        _assert_identical(campaign, serial)


def test_detection_window_change_is_all_hits(env, candidates, tmp_path):
    """Reclassification params don't enter the fingerprint: rerunning
    with another detection window reuses every raw record and only the
    derived outcome classes move."""
    with CampaignCache(tmp_path / "store") as cache:
        ParallelCampaignRunner(env.spec(), workers=1,
                               cache=cache).run(candidates)
    reference = env.manager(CampaignConfig(detection_window=2)) \
        .run(candidates)
    with CampaignCache(tmp_path / "store") as cache:
        runner = ParallelCampaignRunner(
            env.spec(CampaignConfig(detection_window=2)),
            workers=1, cache=cache)
        campaign = runner.run(candidates)
        assert cache.stats.simulated == 0
        assert cache.stats.hits == len(candidates.faults)
        _assert_identical(campaign, reference)


# ----------------------------------------------------------------------
# incremental recompute after a netlist edit
# ----------------------------------------------------------------------
def _mutated_spec(env):
    spec = copy.deepcopy(env.spec())
    for gate in spec.circuit.gates:
        if spec.circuit.net_names[gate.out] == MUTATED_GATE:
            assert gate.op == OP_OR
            gate.op = OP_AND
            return spec
    raise AssertionError(f"gate {MUTATED_GATE} not found")


def test_incremental_campaign_after_gate_mutation(env, candidates,
                                                  serial, tmp_path):
    spec0 = env.spec()
    spec1 = _mutated_spec(env)
    ctx0 = FingerprintContext.from_spec(spec0)
    ctx1 = FingerprintContext.from_spec(spec1)
    unchanged = sum(
        ctx0.fault_fingerprint(f) == ctx1.fault_fingerprint(f)
        for f in candidates.faults)
    total = len(candidates.faults)
    assert 0 < unchanged < total    # the edit must not flush the store

    reference = spec1.manager().run(candidates)    # cold, mutated

    with CampaignCache(tmp_path / "store") as cache:
        ParallelCampaignRunner(spec0, workers=2,
                               cache=cache).run(candidates)
    with CampaignCache(tmp_path / "store") as cache:
        runner = ParallelCampaignRunner(spec1, workers=2, cache=cache)
        campaign = runner.run(candidates)
        # only the faults whose support cone contains the mutated gate
        # were re-simulated; the rest were served from the store
        assert cache.stats.hits == unchanged
        assert cache.stats.simulated == total - unchanged
        _assert_identical(campaign, reference)

        # `store diff` pinpoints exactly the zones whose outcome
        # population moved under the edit
        diff = diff_runs(cache)
        expected = sorted({
            res.fault.zone or "?"
            for old, res in zip(serial.results, campaign.results)
            if campaign.outcome_of(res) != serial.outcome_of(old)})
        assert sorted(diff.affected_zones()) == expected
        assert expected                 # the edit is visible in diff
        assert len(diff.changed_faults) > 0


# ----------------------------------------------------------------------
# minicpu
# ----------------------------------------------------------------------
PROG = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
        ("xor", 0), ("st", 1), ("ld", 1), ("out",), ("jnz", 0)]


@pytest.fixture(scope="module")
def cpu_setup():
    from repro.faultinjection import CampaignSpec, MemoryImageSetup
    cpu = MiniCpu(CpuConfig.plain())
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 40
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    flops = [f.name for f in cpu.circuit.flops
             if f.name in zone_of][:8]
    faults = []
    for i, flop in enumerate(flops):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=5 + (i % 7)))
        faults.append(StuckNetFault(target=flop, zone=zone_of[flop],
                                    value=i % 2))
    spec = CampaignSpec.from_zone_set(
        cpu.circuit, stimuli, zone_set,
        setup=MemoryImageSetup(
            mem_images={"imem/rom": assemble(PROG)}))
    return cpu, zone_set, stimuli, CandidateList(faults=faults), spec


@pytest.fixture(scope="module")
def cpu_serial(cpu_setup):
    cpu, zone_set, stimuli, candidates, _ = cpu_setup
    manager = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom", assemble(PROG)))
    return manager.run(candidates)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_minicpu_cached_equals_cold_serial(cpu_setup, cpu_serial,
                                           workers, tmp_path):
    *_, candidates, spec = cpu_setup
    with CampaignCache(tmp_path / "store") as cache:
        campaign = ParallelCampaignRunner(spec, workers=workers,
                                          cache=cache).run(candidates)
        _assert_identical(campaign, cpu_serial)
        assert cache.stats.misses == len(candidates.faults)

    with CampaignCache(tmp_path / "store") as cache:
        warm = ParallelCampaignRunner(spec, workers=workers,
                                      cache=cache).run(candidates)
        assert cache.stats.simulated == 0
        assert cache.stats.hits == len(candidates.faults)
        _assert_identical(warm, cpu_serial)
