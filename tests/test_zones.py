"""Tests for sensible-zone extraction, cones, classification, effects."""

import pytest

from repro.hdl import Module, library
from repro.zones import (
    ConeAnalyzer,
    EffectPredictor,
    ExtractionConfig,
    FaultClass,
    FaultClassifier,
    ObservationKind,
    ZoneKind,
    extract_zones,
    predict_effects_table,
)


def build_pipeline_circuit():
    """in -> comb -> stage1 -> comb -> stage2 -> out, plus alarm logic."""
    m = Module("pipe")
    a = m.input("a", 4)
    b = m.input("b", 4)
    with m.scope("front"):
        s1 = m.reg("stage1", a ^ b)
    with m.scope("back"):
        s2 = m.reg("stage2", s1 & a)
        bad = s2.reduce_or()
    m.output("y", s2)
    m.output("alarm_any", bad)
    return m.build()


@pytest.fixture(scope="module")
def pipe_zones():
    return extract_zones(build_pipeline_circuit())


def test_register_zones_found(pipe_zones):
    regs = pipe_zones.of_kind(ZoneKind.REGISTER)
    names = {z.name for z in regs}
    assert "front/stage1" in names
    assert "back/stage2" in names
    for z in regs:
        assert z.size_bits == 4
        assert len(z.flops) == 4


def test_port_zones(pipe_zones):
    names = {z.name for z in pipe_zones.zones}
    assert "pi:a" in names and "po:y" in names


def test_observation_points_alarm_classified(pipe_zones):
    diag = pipe_zones.diagnostic_points()
    assert [p.name for p in diag] == ["alarm_any"]
    assert diag[0].kind is ObservationKind.ALARM
    funcs = {p.name for p in pipe_zones.functional_points()}
    assert "y" in funcs


def test_cone_statistics(pipe_zones):
    s1 = pipe_zones.by_name("front/stage1")
    assert s1.cone_gates == 4  # four XOR gates
    s2 = pipe_zones.by_name("back/stage2")
    assert s2.cone_gates == 4  # four AND gates
    assert s2.cone_depth >= 1


def test_subblock_zones(pipe_zones):
    blocks = {z.name for z in pipe_zones.of_kind(ZoneKind.SUBBLOCK)}
    assert "block:front" in blocks and "block:back" in blocks


def test_register_slicing():
    m = Module("wide")
    d = m.input("d", 16)
    q = m.reg("big", d)
    m.output("q", q)
    zs = extract_zones(m.build(),
                       ExtractionConfig(register_slice_bits=4),
                       analyze_cones=False)
    regs = zs.of_kind(ZoneKind.REGISTER)
    assert len(regs) == 4
    assert all(z.size_bits == 4 for z in regs)


def test_memory_region_zones():
    m = Module("memz")
    addr = m.input("addr", 5)
    wdata = m.input("wdata", 8)
    we = m.input("we")
    rdata = m.memory("ram", 32, 8, addr, wdata, we)
    m.output("rdata", rdata)
    zs = extract_zones(m.build(),
                       ExtractionConfig(memory_words_per_zone=8),
                       analyze_cones=False)
    mems = zs.of_kind(ZoneKind.MEMORY)
    assert len(mems) == 4
    assert mems[0].mem_words == (0, 7)
    assert mems[0].size_bits == 64


def test_critical_net_detection():
    m = Module("crit")
    en = m.input("en")
    d = m.input("d", 30)
    q = m.reg("r", d, en=en)  # enable fans out to 30 flops
    m.output("q", q)
    zs = extract_zones(m.build(), ExtractionConfig(critical_fanout=24),
                       analyze_cones=False)
    crit = zs.of_kind(ZoneKind.CRITICAL_NET)
    assert any("en" in z.name for z in crit)


# ----------------------------------------------------------------------
# cones
# ----------------------------------------------------------------------
def test_cone_boundary_stops_at_registers():
    circ = build_pipeline_circuit()
    analyzer = ConeAnalyzer(circ)
    zs = extract_zones(circ)
    s2 = zs.by_name("back/stage2")
    cone = zs.cones[s2.name]
    boundary_names = {circ.net_names[n] for n in cone.boundary_nets}
    # stage2's cone must stop at stage1's q pins, not reach back to b
    assert any("stage1" in n for n in boundary_names)
    assert not any(n.startswith("b[") for n in boundary_names)


def test_zone_correlation_shared_logic():
    m = Module("shared")
    a = m.input("a", 4)
    b = m.input("b", 4)
    common = a & b  # shared by both registers
    q1 = m.reg("r1", common ^ a)
    q2 = m.reg("r2", common | b)
    m.output("y1", q1)
    m.output("y2", q2)
    zs = extract_zones(m.build())
    pairs = dict(zs.correlation.correlated_pairs())
    assert any({"r1", "r2"} <= set(pair) or ("r1", "r2") == pair
               for pair in pairs)
    assert zs.correlation.wide_gate_count >= 4  # the four AND gates


# ----------------------------------------------------------------------
# local / wide / global classification
# ----------------------------------------------------------------------
def test_fault_classification():
    m = Module("cls")
    a = m.input("a", 8)
    shared_gate = a[0] & a[1]             # one gate feeding two cones
    q1 = m.reg("r1", a[0:4] ^ shared_gate.repeat(4))
    q2 = m.reg("r2", a[4:8] ^ shared_gate.repeat(4))
    q3 = m.reg("r3", a[0:4] | a[4:8])     # private cone
    m.output("y", m.cat(q1, q2, q3))
    circ = m.build()
    zs = extract_zones(circ)
    classifier = FaultClassifier(zs, global_fraction=0.9)

    # an OR gate sits only in r3's cone -> local
    or_gates = [i for i, g in enumerate(circ.gates)
                if g.op_name == "or"]
    extent = classifier.classify_gate(or_gates[0])
    assert extent.fault_class is FaultClass.LOCAL
    assert extent.zones == ("r3",)

    # the AND gate feeds both r1 and r2 -> wide (multiple failures)
    and_gates = [i for i, g in enumerate(circ.gates)
                 if g.op_name == "and"]
    extent = classifier.classify_gate(and_gates[0])
    assert extent.fault_class is FaultClass.WIDE
    assert set(extent.zones) == {"r1", "r2"}

    census = classifier.census()
    assert census["wide"] >= 1


def test_global_net_designation():
    circ = build_pipeline_circuit()
    zs = extract_zones(circ)
    classifier = FaultClassifier(zs, global_nets=("a[0]",))
    extent = classifier.classify_net("a[0]")
    assert extent.fault_class is FaultClass.GLOBAL


# ----------------------------------------------------------------------
# effect prediction
# ----------------------------------------------------------------------
def test_main_and_secondary_effects():
    circ = build_pipeline_circuit()
    zs = extract_zones(circ)
    table = predict_effects_table(zs)

    s1 = table["front/stage1"]
    # stage1 feeds stage2 which feeds both y and alarm_any
    assert s1.main is not None
    assert s1.reaches("y") and s1.reaches("alarm_any")
    # the main effect needs one register crossing (stage2)
    assert s1.main.distance == 1

    s2 = table["back/stage2"]
    assert s2.main.distance == 0  # direct combinational path to outputs
    assert {e.observation for e in s2.effects} == {"y", "alarm_any"}


def test_effect_ordering_main_first():
    circ = build_pipeline_circuit()
    zs = extract_zones(circ)
    predictor = EffectPredictor(circ, zs.observation_points)
    eff = predictor.predict(zs.by_name("pi:a"))
    dists = [e.distance for e in eff.effects]
    assert dists == sorted(dists)
    assert eff.effects[0].is_main
    assert all(not e.is_main for e in eff.effects[1:])


def test_unreachable_zone_has_no_effects():
    m = Module("dead")
    a = m.input("a", 2)
    q = m.reg("sink", a)   # register feeds nothing
    m.output("y", m.input("b", 2))
    _ = q
    circ = m.build()
    zs = extract_zones(circ)
    table = predict_effects_table(zs)
    assert table["sink"].effects == []
