module bad_arity (clk, a, b, y);
  input clk;
  input a;
  input b;
  output y;
  wire n0; // a
  wire n1; // b
  wire n2; // y
  wire n3; // t0
  wire n4; // t1
  assign n0 = a;
  assign n1 = b;
  assign y = n2;
  AND2 g0 (n3, n0, n1);
  AND2 g1 (n4, n0);
  OR2 g2 (n2, n3, n4, n0);
  DFF #(.INIT(0)) f0 (clk, n4); // state
endmodule
