// a netlist with no module at all
// (synthesis produced an empty file after an earlier failure)
wire n0;
