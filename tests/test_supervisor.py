"""Chaos tests: the fault-tolerant campaign supervisor.

A campaign engine claiming IEC 61508-grade evidence handling must not
lose or corrupt results when a worker crashes, hangs or raises — so
these tests inject *hostile faults* that kill, stall or blow up the
worker process mid-campaign and check that (a) the campaign completes,
(b) exactly the hostile faults are quarantined, and (c) every
surviving per-fault record is bit-identical to a serial run over the
benign faults alone.
"""

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.faultinjection import (
    CampaignAborted,
    CampaignConfig,
    CampaignSpec,
    CampaignSupervisor,
    CandidateList,
    FaultInjectionManager,
    MemoryImageSetup,
    ParallelCampaignRunner,
    SafeProgress,
    SeuFault,
    StimuliValidationError,
    StuckNetFault,
    SupervisorConfig,
    build_environment,
    validate_stimuli,
)
from repro.faultinjection.supervisor import FaultAnomaly
from repro.hdl import CycleBudgetExceeded, Simulator
from repro.reporting.health import (
    quarantine_bounds,
    render_campaign_health,
)
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.zones import ZoneKind, extract_zones


@dataclass(frozen=True)
class HostileFault(SeuFault):
    """A fault whose arming sabotages the worker process."""

    mode: str = "raise"   # raise | crash | hang

    @property
    def name(self) -> str:
        return f"hostile-{self.mode}:{self.target}"

    def arm(self, sim, machine, t0):
        if self.mode == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "hang":
            time.sleep(600)
        raise RuntimeError(f"hostile fault on {self.target}")


#: fast-failing supervision policy for the chaos tests: no retries
#: (failures are deterministic) and near-zero backoff
FAST = dict(max_retries=0, backoff_base=0.001)


def _fault_rows(campaign):
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


@pytest.fixture(scope="module")
def candidates(env):
    return env.candidates()


@pytest.fixture(scope="module")
def serial(env, candidates):
    return env.manager(CampaignConfig()).run(candidates)


def hostile_candidates(env, candidates, modes):
    """Benign candidates with one hostile fault per mode spliced in."""
    faults = list(candidates.faults)
    flops = [f.name for f in env.circuit.flops]
    zone = faults[0].zone
    hostiles = [HostileFault(target=flops[i % len(flops)], zone=zone,
                             mode=mode)
                for i, mode in enumerate(modes)]
    # spread them through the list: front, middle, back
    spliced = list(faults)
    for i, hostile in enumerate(hostiles):
        spliced.insert((i + 1) * len(spliced) // (len(hostiles) + 1),
                       hostile)
    return CandidateList(faults=spliced), hostiles


PROG = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
        ("xor", 0), ("st", 1), ("ld", 1), ("out",), ("jnz", 0)]


@pytest.fixture(scope="module")
def cpu_setup():
    cpu = MiniCpu(CpuConfig.plain())
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 40
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    flops = [f.name for f in cpu.circuit.flops
             if f.name in zone_of][:8]
    faults = []
    for i, flop in enumerate(flops):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=5 + (i % 7)))
        faults.append(StuckNetFault(target=flop, zone=zone_of[flop],
                                    value=i % 2))
    hostiles = [HostileFault(target=flops[0], zone=zone_of[flops[0]],
                             mode="crash"),
                HostileFault(target=flops[1], zone=zone_of[flops[1]],
                             mode="raise")]
    spliced = list(faults)
    spliced.insert(3, hostiles[0])
    spliced.insert(11, hostiles[1])
    spec = CampaignSpec.from_zone_set(
        cpu.circuit, stimuli, zone_set,
        setup=MemoryImageSetup(
            mem_images={"imem/rom": assemble(PROG)}))
    serial = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom",
                                       assemble(PROG))).run(
        CandidateList(faults=faults))
    return spec, CandidateList(faults=spliced), hostiles, serial


# ----------------------------------------------------------------------
# clean runs: supervision must be invisible
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_clean_supervised_run_is_bit_identical(env, candidates,
                                               serial, workers):
    supervisor = CampaignSupervisor(env.spec(), workers=workers)
    campaign = supervisor.run(candidates)
    assert supervisor.anomalies == []
    assert supervisor.last_stats.health.clean
    assert _fault_rows(campaign) == _fault_rows(serial)
    assert campaign.outcomes() == serial.outcomes()
    assert campaign.measured_dc() == serial.measured_dc()


def test_clean_run_coverage_equals_serial(env, candidates, serial):
    campaign = CampaignSupervisor(env.spec(), workers=2) \
        .run(candidates)
    assert campaign.coverage.sens == serial.coverage.sens
    assert campaign.coverage.obse == serial.coverage.obse
    assert campaign.coverage.diag == serial.coverage.diag


def test_empty_campaign_through_supervisor(env):
    campaign = CampaignSupervisor(env.spec(), workers=2) \
        .run(CandidateList())
    assert campaign.results == []
    assert campaign.measured_dc() == 0.0


# ----------------------------------------------------------------------
# chaos matrix: crash + raise hostiles, survivors bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fmem_chaos_survivors_bit_identical(env, candidates, serial,
                                            workers):
    spliced, hostiles = hostile_candidates(
        env, candidates, ["crash", "raise", "crash"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=workers,
        config=SupervisorConfig(**FAST))
    campaign = supervisor.run(spliced)
    assert sorted(a.fault_name for a in supervisor.anomalies) == \
        sorted(h.name for h in hostiles)
    assert {a.kind for a in supervisor.anomalies} == \
        {"crash", "exception"}
    # every surviving record matches the serial benign-only reference
    assert _fault_rows(campaign) == _fault_rows(serial)
    assert campaign.outcomes() == serial.outcomes()
    assert campaign.measured_dc() == serial.measured_dc()
    health = supervisor.last_stats.health
    assert health.quarantined == len(hostiles)
    assert health.crashes >= 2 and health.exceptions >= 1
    assert not health.clean
    assert "quarantined" in supervisor.last_stats.summary()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_minicpu_chaos_survivors_bit_identical(cpu_setup, workers):
    spec, spliced, hostiles, serial = cpu_setup
    supervisor = CampaignSupervisor(
        spec, workers=workers, config=SupervisorConfig(**FAST))
    campaign = supervisor.run(spliced)
    assert sorted(a.fault_name for a in supervisor.anomalies) == \
        sorted(h.name for h in hostiles)
    assert _fault_rows(campaign) == _fault_rows(serial)
    assert campaign.measured_dc() == serial.measured_dc()


def test_hostile_crash_records_worker_details(env, candidates):
    spliced, hostiles = hostile_candidates(env, candidates, ["raise"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=2, config=SupervisorConfig(**FAST))
    supervisor.run(spliced)
    (anomaly,) = supervisor.anomalies
    assert anomaly.kind == "exception"
    assert anomaly.worker is not None
    assert "hostile fault" in anomaly.traceback
    assert anomaly.attempts >= 1
    assert anomaly.zone == hostiles[0].zone


def test_hang_is_killed_and_quarantined(env, candidates):
    # small campaign so each wall-clock timeout costs little
    subset = CandidateList(faults=list(candidates.faults[:8]))
    spliced, hostiles = hostile_candidates(env, subset, ["hang"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=2, shards=4,
        config=SupervisorConfig(shard_timeout=1.5, **FAST))
    start = time.time()
    campaign = supervisor.run(spliced)
    assert time.time() - start < 30
    assert [a.fault_name for a in supervisor.anomalies] == \
        [hostiles[0].name]
    assert supervisor.anomalies[0].kind == "hang"
    assert len(campaign.results) == 8
    assert supervisor.last_stats.health.hangs >= 1


def test_retries_rerun_shard_before_bisecting(env, candidates):
    spliced, _ = hostile_candidates(env, candidates, ["raise"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        config=SupervisorConfig(max_retries=1, backoff_base=0.001))
    supervisor.run(spliced)
    health = supervisor.last_stats.health
    assert health.retries >= 1
    assert health.quarantined == 1
    (anomaly,) = supervisor.anomalies
    assert anomaly.attempts == 2  # initial + one retry


def test_no_quarantine_aborts_campaign(env, candidates):
    spliced, _ = hostile_candidates(env, candidates, ["raise"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        config=SupervisorConfig(quarantine=False, **FAST))
    with pytest.raises(CampaignAborted):
        supervisor.run(spliced)


# ----------------------------------------------------------------------
# graceful degradation: no worker processes available
# ----------------------------------------------------------------------
def test_degrades_to_in_process_when_spawn_fails(env, candidates,
                                                 serial, monkeypatch):
    def no_spawn(self, job):
        raise OSError("Resource temporarily unavailable")
    monkeypatch.setattr(CampaignSupervisor, "_spawn", no_spawn)
    supervisor = CampaignSupervisor(env.spec(), workers=4)
    campaign = supervisor.run(candidates)
    assert supervisor.last_stats.health.degraded
    assert _fault_rows(campaign) == _fault_rows(serial)
    assert "DEGRADED" in supervisor.last_stats.summary()


def test_degraded_mode_still_quarantines_exceptions(env, candidates,
                                                    serial,
                                                    monkeypatch):
    def no_spawn(self, job):
        raise OSError("no processes for you")
    monkeypatch.setattr(CampaignSupervisor, "_spawn", no_spawn)
    spliced, hostiles = hostile_candidates(env, candidates, ["raise"])
    supervisor = CampaignSupervisor(
        env.spec(), workers=4, config=SupervisorConfig(**FAST))
    campaign = supervisor.run(spliced)
    assert [a.fault_name for a in supervisor.anomalies] == \
        [hostiles[0].name]
    assert _fault_rows(campaign) == _fault_rows(serial)


def test_spawn_failure_raises_when_degradation_disabled(env,
                                                        candidates,
                                                        monkeypatch):
    def no_spawn(self, job):
        raise OSError("no processes for you")
    monkeypatch.setattr(CampaignSupervisor, "_spawn", no_spawn)
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        config=SupervisorConfig(degrade_in_process=False))
    with pytest.raises(OSError):
        supervisor.run(candidates)


# ----------------------------------------------------------------------
# cycle budget: deterministic runaway containment
# ----------------------------------------------------------------------
def test_simulator_cycle_budget_raises(env):
    sim = Simulator(env.circuit, machines=1, cycle_budget=3)
    if env.setup:
        env.setup(sim)
    with pytest.raises(CycleBudgetExceeded):
        for vector in env.stimuli:
            sim.step(vector)


def test_serial_manager_propagates_cycle_budget(env, candidates):
    manager = env.manager(CampaignConfig(cycle_budget=3))
    with pytest.raises(CycleBudgetExceeded):
        manager.run(CandidateList(faults=list(candidates.faults[:2])))


def test_supervisor_quarantines_cycle_budget_as_hang(env, candidates):
    subset = CandidateList(faults=list(candidates.faults[:4]))
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        config=SupervisorConfig(cycle_budget=3, **FAST))
    campaign = supervisor.run(subset)
    assert campaign.results == []
    assert len(supervisor.anomalies) == 4
    assert {a.kind for a in supervisor.anomalies} == {"hang"}
    assert supervisor.last_stats.health.hangs >= 4


def test_ample_cycle_budget_changes_nothing(env, candidates, serial):
    subset = CandidateList(faults=list(candidates.faults[:6]))
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        config=SupervisorConfig(cycle_budget=len(env.stimuli) + 1))
    campaign = supervisor.run(subset)
    assert supervisor.anomalies == []
    assert _fault_rows(campaign) == _fault_rows(serial)[:6]


# ----------------------------------------------------------------------
# store integration: anomalies persist, resume skips known poison
# ----------------------------------------------------------------------
def test_anomalies_persist_and_resume_skips_poison(env, candidates,
                                                   serial, tmp_path):
    from repro.store import CampaignCache
    spliced, hostiles = hostile_candidates(env, candidates, ["raise"])

    with CampaignCache(tmp_path / "store") as cache:
        supervisor = CampaignSupervisor(
            env.spec(), workers=2, cache=cache,
            config=SupervisorConfig(**FAST))
        campaign = supervisor.run(spliced)
        assert _fault_rows(campaign) == _fault_rows(serial)
        assert cache.db.anomaly_count() == 1
        assert cache.db.shard_attempt_count() > 0
        run_id = cache.last_run_id
        membership = cache.db.run_faults(run_id)
        assert sum(1 for f in membership
                   if f["outcome"] == "quarantined") == 1
        (row,) = cache.db.anomaly_rows(run_id=run_id)
        assert row.fault_name == hostiles[0].name
        assert row.kind == "exception"

    # resume: the poison fault is served from the anomaly table and
    # never re-executed; benign faults are all cache hits
    with CampaignCache(tmp_path / "store") as cache:
        supervisor = CampaignSupervisor(
            env.spec(), workers=2, cache=cache,
            config=SupervisorConfig(**FAST))
        campaign = supervisor.run(spliced)
        assert _fault_rows(campaign) == _fault_rows(serial)
        assert cache.stats.hits == len(candidates.faults)
        assert cache.stats.simulated == 0
        assert cache.stats.poisoned == 1
        health = supervisor.last_stats.health
        assert health.known_poison_skipped == 1
        assert health.crashes == health.exceptions == 0
        (anomaly,) = supervisor.anomalies
        assert anomaly.known


def test_clearing_anomaly_allows_reexecution(env, candidates,
                                             tmp_path):
    from repro.store import CampaignCache
    spliced, _ = hostile_candidates(env, candidates, ["raise"])
    with CampaignCache(tmp_path / "store") as cache:
        CampaignSupervisor(env.spec(), workers=2, cache=cache,
                           config=SupervisorConfig(**FAST)) \
            .run(spliced)
        (row,) = cache.db.anomaly_rows()
        assert cache.db.clear_anomaly(row.fault_fp) == 1
        assert cache.db.anomaly_count() == 0
    with CampaignCache(tmp_path / "store") as cache:
        supervisor = CampaignSupervisor(
            env.spec(), workers=2, cache=cache,
            config=SupervisorConfig(**FAST))
        supervisor.run(spliced)
        # re-executed and re-quarantined, not served from the store
        assert supervisor.last_stats.health.known_poison_skipped == 0
        assert supervisor.last_stats.health.exceptions >= 1


def test_store_stats_count_anomalies(env, candidates, tmp_path):
    from repro.store import CampaignCache
    from repro.store.query import store_stats
    spliced, _ = hostile_candidates(env, candidates, ["raise"])
    with CampaignCache(tmp_path / "store") as cache:
        CampaignSupervisor(env.spec(), workers=2, cache=cache,
                           config=SupervisorConfig(**FAST)) \
            .run(spliced)
        stats = store_stats(cache)
        assert stats.anomalies == 1
        assert stats.shard_attempts > 0
        pairs = dict(stats.as_pairs())
        assert pairs["quarantined faults"] == 1


# ----------------------------------------------------------------------
# progress callback shielding
# ----------------------------------------------------------------------
def test_progress_exception_does_not_abort_campaign(env, candidates):
    calls = []

    def bad_progress(done, total):
        calls.append((done, total))
        raise ValueError("progress bar exploded")

    runner = ParallelCampaignRunner(env.spec(), workers=2,
                                    progress=bad_progress)
    with pytest.warns(RuntimeWarning, match="progress callback"):
        campaign = runner.run(candidates)
    assert len(campaign.results) == len(candidates.faults)
    assert len(calls) == 1   # disabled after the first failure


def test_progress_exception_shielded_in_supervisor(env, candidates):
    def bad_progress(done, total):
        raise ValueError("boom")

    supervisor = CampaignSupervisor(env.spec(), workers=2,
                                    progress=bad_progress)
    with pytest.warns(RuntimeWarning, match="progress callback"):
        campaign = supervisor.run(candidates)
    assert len(campaign.results) == len(candidates.faults)


def test_supervisor_progress_is_monotonic(env, candidates):
    seen = []
    supervisor = CampaignSupervisor(
        env.spec(), workers=2,
        progress=lambda done, total: seen.append((done, total)))
    supervisor.run(candidates)
    total = len(candidates.faults)
    assert seen and seen[-1] == (total, total)
    assert [d for d, _ in seen] == sorted(d for d, _ in seen)


def test_safe_progress_wrap_is_idempotent():
    wrapped = SafeProgress.wrap(lambda done, total: None)
    assert SafeProgress.wrap(wrapped) is wrapped
    assert SafeProgress.wrap(None) is None


# ----------------------------------------------------------------------
# stimuli validation
# ----------------------------------------------------------------------
def test_validate_stimuli_accepts_real_workload(env):
    validate_stimuli(env.circuit, env.stimuli)
    env.validate_stimuli()


def test_validate_stimuli_rejects_unknown_signal(env):
    stimuli = [dict(v) for v in env.stimuli]
    stimuli[2]["htrans_typo"] = 1
    with pytest.raises(StimuliValidationError) as err:
        validate_stimuli(env.circuit, stimuli)
    assert "htrans_typo" in str(err.value)
    assert "cycle 2" in str(err.value)


def test_validate_stimuli_rejects_undriven_input(env):
    victim = sorted(env.circuit.inputs)[0]
    stimuli = [{k: v for k, v in vec.items() if k != victim}
               for vec in env.stimuli]
    with pytest.raises(StimuliValidationError) as err:
        validate_stimuli(env.circuit, stimuli)
    assert victim in str(err.value)
    assert "never driven" in str(err.value)


def test_validate_stimuli_accepts_empty_stimuli(env):
    validate_stimuli(env.circuit, [])


# ----------------------------------------------------------------------
# quarantine metric bounds and report rendering
# ----------------------------------------------------------------------
def test_quarantine_bounds_math(serial):
    counts = serial.outcomes()
    dd = counts["dangerous_detected"]
    du = counts["dangerous_undetected"]
    safe = counts["safe"] + counts["detected_safe"]
    n = len(serial.results)
    q = 5
    bounds = quarantine_bounds(serial, q)
    assert bounds.measured == n and bounds.quarantined == q
    assert bounds.dc_measured == serial.measured_dc()
    assert bounds.dc_best == bounds.dc_measured
    assert bounds.dc_worst == pytest.approx(dd / (dd + du + q))
    assert bounds.safe_best == pytest.approx((safe + q) / (n + q))
    assert bounds.safe_worst == pytest.approx(safe / (n + q))
    assert bounds.dc_worst <= bounds.dc_measured
    assert bounds.safe_worst <= bounds.safe_best


def test_quarantine_bounds_clean_campaign(serial):
    bounds = quarantine_bounds(serial, 0)
    assert bounds.clean
    assert bounds.dc_worst == bounds.dc_measured
    assert bounds.safe_best == pytest.approx(
        serial.measured_safe_fraction())


def test_render_campaign_health_lists_zones(serial):
    zone = serial.results[0].fault.zone
    anomalies = [
        FaultAnomaly(fault_name="hostile-raise:f0", zone=zone,
                     kind="exception", worker=123, attempts=1),
        FaultAnomaly(fault_name="hostile-crash:f1", zone=zone,
                     kind="crash", worker=124, attempts=3),
    ]
    text = render_campaign_health(serial, anomalies)
    assert zone in text
    assert "hostile-raise:f0" in text
    assert "worst-case DC" in text
    assert "Metric bounds under quarantine" in text


def test_render_campaign_health_clean(serial):
    text = render_campaign_health(serial, [])
    assert "clean" in text


# ----------------------------------------------------------------------
# CLI surface: exit codes, validation, store query
# ----------------------------------------------------------------------
def _run_cli(capsys, *argv):
    from repro.cli import main
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_exit_code_3_on_quarantine(capsys, tmp_path,
                                       monkeypatch):
    from repro.faultinjection.environment import InjectionEnvironment
    original = InjectionEnvironment.candidates

    def hostile(self, config=None):
        candidates = original(self, config)
        flop = self.circuit.flops[0].name
        faults = list(candidates.faults)
        faults.insert(7, HostileFault(
            target=flop, zone=faults[0].zone, mode="raise"))
        return CandidateList(faults=faults)

    monkeypatch.setattr(InjectionEnvironment, "candidates", hostile)
    code, out, _ = _run_cli(
        capsys, "campaign", "--variant", "small-improved",
        "--workers", "2", "--max-retries", "0",
        "--store", str(tmp_path / "store"))
    assert code == 3
    assert "Quarantined faults by zone" in out
    assert "hostile-raise" in out
    assert "worst-case DC" in out

    # the anomaly is queryable afterwards
    code, out, _ = _run_cli(
        capsys, "store", "query", "--run", "1",
        "--store", str(tmp_path / "store"))
    assert code == 0
    assert "quarantined faults" in out
    assert "hostile-raise" in out


def test_cli_clean_campaign_exits_zero(capsys, tmp_path):
    code, out, _ = _run_cli(
        capsys, "campaign", "--variant", "small-improved",
        "--workers", "2", "--store", str(tmp_path / "store"))
    assert code == 0
    assert "Quarantined" not in out


def test_cli_no_quarantine_aborts_with_code_1(capsys, tmp_path,
                                              monkeypatch):
    from repro.faultinjection.environment import InjectionEnvironment
    original = InjectionEnvironment.candidates

    def hostile(self, config=None):
        candidates = original(self, config)
        flop = self.circuit.flops[0].name
        faults = list(candidates.faults)
        faults.insert(0, HostileFault(
            target=flop, zone=faults[0].zone, mode="raise"))
        return CandidateList(faults=faults)

    monkeypatch.setattr(InjectionEnvironment, "candidates", hostile)
    code, _, err = _run_cli(
        capsys, "campaign", "--variant", "small-improved",
        "--workers", "2", "--max-retries", "0", "--no-quarantine",
        "--no-cache")
    assert code == 1
    assert "aborted" in err


def test_cli_rejects_invalid_stimuli(capsys, monkeypatch):
    import repro.faultinjection as fi
    original = fi.build_environment

    def broken(sub, **kw):
        env = original(sub, **kw)
        env.stimuli[1]["no_such_signal"] = 1
        return env

    monkeypatch.setattr(fi, "build_environment", broken)
    code, _, err = _run_cli(
        capsys, "campaign", "--variant", "small-improved",
        "--no-cache")
    assert code == 2
    assert "no_such_signal" in err
    assert "cycle 1" in err
