"""Tests for the report-rendering helpers."""

from repro.reporting import pct, render_kv, render_table


def test_render_table_alignment():
    text = render_table(["name", "v"], [["a", 1], ["long-name", 22]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    widths = {len(ln) for ln in lines[1:]}
    assert len(widths) == 1          # every row the same width
    assert "| long-name | 22 |" in text


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    assert "| a | b |" in text


def test_render_kv():
    text = render_kv([("key", 1), ("much-longer", "x")])
    lines = text.splitlines()
    assert lines[0].startswith("key ")
    assert ": 1" in lines[0]
    colon_cols = {ln.index(":") for ln in lines}
    assert len(colon_cols) == 1      # aligned


def test_pct():
    assert pct(0.9938) == "99.38%"
    assert pct(0.5, 0) == "50%"
    assert pct(1.0) == "100.00%"
