"""Tests of the campaign API stack (:mod:`repro.api`).

Covers the shared event vocabulary (state-snapshot streams), the
token/quota policy objects, the asyncio server's coded degradation
(401/403/404/413/429 + Retry-After, never a traceback), idempotent
submit convergence over real HTTP, progress streaming to a terminal
snapshot, graceful stop, and an end-to-end campaign through embedded
daemon workers.  The crash half of the story — SIGKILL mid-submit /
mid-stream with client retry convergence — lives in the chaos
harness (``soc-fmea chaos``, tests/test_chaos.py).
"""

import http.client
import json
import threading
import time

import pytest

from repro.api import (
    ApiClient,
    ApiClientError,
    ApiConfig,
    ApiServer,
    AuthConfig,
    estimate_faults,
    format_event,
    is_terminal,
    job_event,
    parse_event,
)
from repro.diagnostics import DiagnosticError
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.service.queue import JobRow


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
class _RunningServer:
    """Run one ApiServer on its own thread for the test body."""

    def __init__(self, root, config: ApiConfig | None = None,
                 daemon=None):
        self.server = ApiServer(
            root, config or ApiConfig(verbose=False), daemon=daemon)
        self.exit_code: int | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.exit_code = self.server.run()

    def __enter__(self) -> ApiServer:
        self.thread.start()
        assert self.server.wait_started(20), "server never bound"
        return self.server

    def __exit__(self, *exc) -> None:
        self.server.stop()
        self.thread.join(timeout=30)


def _client(server: ApiServer, **kw) -> ApiClient:
    kw.setdefault("max_retries", 2)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("backoff_cap", 0.05)
    kw.setdefault("backoff_seed", 7)
    kw.setdefault("timeout", 10.0)
    return ApiClient("127.0.0.1", server.port, **kw)


def _job_row(**over) -> JobRow:
    base = dict(
        job_id=1, project="default", status="running",
        spec={"variant": "small-improved"}, attempts=1,
        max_attempts=3, not_before=0.0, lease_owner="w0",
        lease_deadline=None, run_id=None, result=None, error=None,
        created_at=0.0, updated_at=0.0, idempotency_key=None,
        progress={"done": 10, "total": 40})
    base.update(over)
    return JobRow(**base)


# ----------------------------------------------------------------------
# events: resumable state snapshots
# ----------------------------------------------------------------------
def test_event_snapshot_roundtrip():
    event = job_event(_job_row())
    assert event["job"] == 1 and event["status"] == "running"
    assert event["done"] == 10 and event["total"] == 40
    assert not is_terminal(event)
    assert parse_event(json.dumps(event) + "\n") == event
    line = format_event(event)
    assert "job #1 running" in line and "10/40" in line


def test_terminal_event_carries_result():
    event = job_event(_job_row(
        status="done", lease_owner=None,
        result={"measured_dc": 0.94, "safe_fraction": 0.81}))
    assert is_terminal(event)
    assert event["result"]["measured_dc"] == 0.94
    line = format_event(event)
    assert "measured DC" in line and "safe fraction" in line
    # noise lines parse to None instead of raising
    assert parse_event("") is None
    assert parse_event("not json\n") is None


# ----------------------------------------------------------------------
# auth + quota policy
# ----------------------------------------------------------------------
def test_open_mode_allows_any_project():
    principal = AuthConfig.open().authenticate(None)
    assert principal.project is None
    assert principal.resolve_project(None) == "default"
    assert principal.resolve_project("alpha") == "alpha"


def test_auth_file_pins_tokens_to_projects(tmp_path):
    path = tmp_path / "auth.json"
    path.write_text(json.dumps({"schema": 1, "tokens": {
        "tok-a": {"project": "alpha", "max_queued": 2,
                  "max_faults_per_day": 1000},
        "tok-b": {"project": "beta"},
    }}))
    auth = AuthConfig.load(path)
    assert not auth.open_mode
    with pytest.raises(LookupError):
        auth.authenticate(None)
    with pytest.raises(LookupError):
        auth.authenticate("Basic tok-a")
    with pytest.raises(LookupError):
        auth.authenticate("Bearer unknown")
    alpha = auth.authenticate("Bearer tok-a")
    assert alpha.project == "alpha"
    assert alpha.quota.max_queued == 2
    assert alpha.quota.max_faults_per_day == 1000
    assert alpha.resolve_project(None) == "alpha"
    with pytest.raises(PermissionError):
        alpha.resolve_project("beta")


def test_malformed_auth_file_is_coded(tmp_path):
    path = tmp_path / "auth.json"
    path.write_text("{nope")
    with pytest.raises(DiagnosticError) as exc:
        AuthConfig.load(path)
    assert "E420" in exc.value.report.codes()


def test_estimate_faults_policy():
    # an explicit sample is the estimate
    assert estimate_faults({"variant": "improved",
                            "sample": 37}) == 37
    # otherwise the per-variant table, scaled by banks
    small = estimate_faults({"variant": "small-improved"})
    assert estimate_faults({"variant": "small-improved",
                            "banks": 3}) == 3 * small
    # unknown variants fall back conservatively, not to zero
    assert estimate_faults({"variant": "???"}) >= small


def test_fault_estimate_matches_quick_candidates():
    """The admission estimator's small-improved entry tracks the real
    quick-mode candidate count (drift here silently skews the
    faults-per-day quota)."""
    from repro.faultinjection import build_environment
    from repro.soc import MemorySubsystem, SubsystemConfig

    env = build_environment(
        MemorySubsystem(SubsystemConfig.small_improved()), quick=True)
    assert estimate_faults({"variant": "small-improved"}) \
        == len(env.candidates().faults)


# ----------------------------------------------------------------------
# the server over real HTTP
# ----------------------------------------------------------------------
def test_health_submit_dedupe_and_coded_rejections(tmp_path):
    with _RunningServer(tmp_path / "store") as srv:
        client = _client(srv)
        assert client.health() == {"ok": True}
        ready = client.ready()
        assert ready["ready"] is True and ready["stale_leases"] == 0

        first = client.submit({"variant": "small-improved"},
                              idempotency_key="k1")
        assert first["deduped"] is False and first["job"] == 1
        again = client.submit({"variant": "small-improved"},
                              idempotency_key="k1")
        assert again["deduped"] is True and again["job"] == 1
        other = client.submit({"variant": "small-improved"},
                              idempotency_key="k2")
        assert other["job"] != first["job"]
        assert len(client.jobs()) == 2
        detail = client.job(1)
        assert detail["status"] == "queued"
        assert detail["idempotency_key"] == "k1"

        # coded rejections carry the validation diagnostics
        with pytest.raises(ApiClientError) as exc:
            client.submit({"variant": "no-such-variant"})
        assert exc.value.status == 400 and exc.value.code == "E420"
        codes = {d["code"] for d in
                 exc.value.payload["error"]["diagnostics"]}
        assert "E431" in codes
        with pytest.raises(ApiClientError) as exc:
            client.submit({"bogus_field": 1})
        assert exc.value.status == 400
        with pytest.raises(ApiClientError) as exc:
            client.job(999)
        assert exc.value.status == 404 and exc.value.code == "E423"

        # cancel / retry round-trip through the queue
        assert client.cancel(1) is True
        assert client.retry(1) is True


def test_oversized_and_malformed_bodies_are_coded(tmp_path):
    with _RunningServer(tmp_path / "store") as srv:
        client = _client(srv)
        with pytest.raises(ApiClientError) as exc:
            client.request("POST", "/v1/jobs",
                           body={"pad": "x" * (70 * 1024)})
        assert exc.value.status == 413 and exc.value.code == "E424"

        conn = http.client.HTTPConnection("127.0.0.1", srv.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/jobs", body=b"{nope",
                         headers={"Content-Type":
                                  "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "E420"
        assert "hint" in payload["error"]


def test_watermark_sheds_submits_and_readiness(tmp_path):
    config = ApiConfig(verbose=False, max_queue_depth=2)
    with _RunningServer(tmp_path / "store", config) as srv:
        client = _client(srv, max_retries=0)
        client.submit({"variant": "small-improved"},
                      idempotency_key="k1")
        client.submit({"variant": "small-improved"},
                      idempotency_key="k2")
        # at the watermark: new work is shed with the coded 429...
        with pytest.raises(ApiClientError) as exc:
            client.submit({"variant": "small-improved"},
                          idempotency_key="k3")
        assert "429 E427" in str(exc.value)
        # ...readiness degrades the same way...
        with pytest.raises(ApiClientError) as exc:
            client.ready()
        assert "503 E427" in str(exc.value)
        # ...but a retry of an already-accepted submit still
        # converges (dedupe is checked before the quotas)
        again = client.submit({"variant": "small-improved"},
                              idempotency_key="k1")
        assert again["deduped"] is True


def test_token_auth_quotas_and_project_isolation(tmp_path):
    auth = tmp_path / "auth.json"
    auth.write_text(json.dumps({"schema": 1, "tokens": {
        "tok-a": {"project": "alpha", "max_queued": 1},
        "tok-b": {"project": "beta"},
        "tok-c": {"project": "gamma", "max_faults_per_day": 200},
    }}))
    config = ApiConfig(verbose=False, auth_path=str(auth))
    with _RunningServer(tmp_path / "store", config) as srv:
        anon = _client(srv, max_retries=0)
        with pytest.raises(ApiClientError) as exc:
            anon.submit({"variant": "small-improved"})
        assert exc.value.status == 401 and exc.value.code == "E421"

        alpha = _client(srv, token="tok-a", max_retries=0)
        first = alpha.submit({"variant": "small-improved"},
                             idempotency_key="a1")
        assert first["project"] == "alpha"
        # cross-project submit by a pinned token is forbidden
        with pytest.raises(ApiClientError) as exc:
            alpha.submit({"variant": "small-improved"},
                         project="beta")
        assert exc.value.status == 403 and exc.value.code == "E422"
        # max_queued=1: the active job blocks a second
        with pytest.raises(ApiClientError) as exc:
            alpha.submit({"variant": "small-improved"},
                         idempotency_key="a2")
        assert "429 E426" in str(exc.value)

        # beta's token can neither probe nor list alpha's jobs
        beta = _client(srv, token="tok-b", max_retries=0)
        with pytest.raises(ApiClientError) as exc:
            beta.job(first["job"])
        assert exc.value.status == 404
        assert beta.jobs() == []

        # the faults-per-day budget sheds once the estimate exceeds
        # it (150 charged + 100 asked > 200), even with queue room
        gamma = _client(srv, token="tok-c", max_retries=0)
        gamma.submit({"variant": "small-improved", "sample": 150},
                     idempotency_key="c1")
        with pytest.raises(ApiClientError) as exc:
            gamma.submit({"variant": "small-improved",
                          "sample": 100},
                         idempotency_key="c2")
        assert "429 E426" in str(exc.value)
        assert "max_faults_per_day" in str(exc.value)


def test_stream_yields_snapshots_until_terminal(tmp_path):
    with _RunningServer(tmp_path / "store") as srv:
        client = _client(srv)
        job_id = client.submit({"variant": "small-improved"})["job"]

        def cancel_later():
            time.sleep(0.5)
            _client(srv).cancel(job_id)

        threading.Thread(target=cancel_later, daemon=True).start()
        events = list(client.stream(job_id))
        assert events[0]["status"] == "queued"
        assert events[-1]["status"] == "cancelled"
        assert is_terminal(events[-1])


def test_graceful_stop_exits_zero_with_queued_work(tmp_path):
    running = _RunningServer(tmp_path / "store")
    with running as srv:
        _client(srv).submit({"variant": "small-improved"})
    assert running.exit_code == 0


def test_end_to_end_campaign_through_embedded_workers(tmp_path):
    """Submit over HTTP, execute in the server's embedded daemon
    worker, stream progress to the terminal snapshot, and converge a
    duplicate submit onto the finished job."""
    root = tmp_path / "store"
    daemon = ServiceDaemon(root, DaemonConfig(
        workers=1, lease_seconds=10.0, heartbeat_interval=0.2,
        poll_interval=0.05, verbose=False))
    with _RunningServer(root, daemon=daemon) as srv:
        client = _client(srv)
        spec = {"variant": "small-improved", "sample": 16}
        job_id = client.submit(spec, idempotency_key="e2e")["job"]
        events = list(client.stream(job_id))
        final = events[-1]
        assert final["status"] == "done"
        assert final["result"]["faults"] == 16
        assert final["result"]["measured_dc"] is not None

        done = client.wait(job_id, timeout=60)
        assert done["status"] == "done"
        assert done["idempotency_key"] == "e2e"
        assert done["run_id"] is not None
        # the retried key converges on the finished job, quota-free
        again = client.submit(spec, idempotency_key="e2e")
        assert again["deduped"] is True and again["job"] == job_id
