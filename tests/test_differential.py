"""Differential testing: the levelized simulator vs a reference
evaluator on randomly generated circuits.

Hypothesis builds random combinational DAGs + register layers through
the DSL; a tiny independent interpreter evaluates the same structure
directly from the netlist.  Any divergence is a simulator bug.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, Simulator
from repro.hdl.netlist import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_MUX,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)


def reference_eval(circuit, input_values, flop_state):
    """Independent single-machine evaluator (dict-based, recursive)."""
    values = {}
    for name, nets in circuit.inputs.items():
        for bit, net in enumerate(nets):
            values[net] = (input_values[name] >> bit) & 1
    for i, flop in enumerate(circuit.flops):
        values[flop.q] = flop_state[i]

    for gi in circuit.levelize():
        gate = circuit.gates[gi]
        ins = [values[n] for n in gate.inputs]
        if gate.op == OP_AND:
            v = ins[0] & ins[1]
        elif gate.op == OP_OR:
            v = ins[0] | ins[1]
        elif gate.op == OP_XOR:
            v = ins[0] ^ ins[1]
        elif gate.op == OP_NAND:
            v = 1 - (ins[0] & ins[1])
        elif gate.op == OP_NOR:
            v = 1 - (ins[0] | ins[1])
        elif gate.op == OP_XNOR:
            v = 1 - (ins[0] ^ ins[1])
        elif gate.op == OP_NOT:
            v = 1 - ins[0]
        elif gate.op == OP_BUF:
            v = ins[0]
        elif gate.op == OP_MUX:
            v = ins[1] if ins[0] else ins[2]
        elif gate.op == OP_CONST0:
            v = 0
        else:
            v = 1
        values[gate.out] = v

    outputs = {}
    for name, nets in circuit.outputs.items():
        outputs[name] = sum(values[n] << b for b, n in enumerate(nets))
    next_state = []
    for i, flop in enumerate(circuit.flops):
        d = values[flop.d]
        q = flop_state[i]
        en = values[flop.en] if flop.en is not None else 1
        nxt = d if en else q
        if flop.rst is not None and values[flop.rst]:
            nxt = flop.init
        next_state.append(nxt)
    return outputs, next_state


def random_circuit(seed: int, n_inputs: int, n_ops: int, n_regs: int):
    """A random layered design built through the DSL."""
    rng = random.Random(seed)
    m = Module(f"rand{seed}")
    pool = []
    for i in range(n_inputs):
        pool.extend(m.input(f"in{i}", 2))
    rst = m.input("rst")
    for step in range(n_ops):
        op = rng.randrange(6)
        a = rng.choice(pool)
        b = rng.choice(pool)
        if op == 0:
            pool.append(a & b)
        elif op == 1:
            pool.append(a | b)
        elif op == 2:
            pool.append(a ^ b)
        elif op == 3:
            pool.append(~a)
        elif op == 4:
            pool.append(m.mux(rng.choice(pool), a, b))
        else:
            pool.append(a.nand(b))
    regs = []
    for r in range(n_regs):
        en = rng.choice(pool) if rng.random() < 0.5 else None
        use_rst = rst if rng.random() < 0.5 else None
        q = m.reg(f"r{r}", rng.choice(pool), en=en, rst=use_rst,
                  init=rng.getrandbits(1))
        regs.append(q)
        pool.append(q)
    out = pool[-1]
    for q in regs:
        out = out ^ q
    m.output("y", out)
    m.output("z", m.cat(*(rng.choice(pool) for _ in range(3))))
    return m.build()


@given(seed=st.integers(0, 10_000),
       stim_seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_simulator_matches_reference(seed, stim_seed):
    circuit = random_circuit(seed, n_inputs=3, n_ops=25, n_regs=4)
    sim = Simulator(circuit)
    state = [f.init for f in circuit.flops]

    rng = random.Random(stim_seed)
    for _cycle in range(6):
        stim = {f"in{i}": rng.getrandbits(2) for i in range(3)}
        stim["rst"] = 1 if rng.random() < 0.2 else 0
        sim.step_eval(stim)
        expected_out, state = reference_eval(circuit, stim, state)
        for name, value in expected_out.items():
            assert sim.output(name) == value, (name, _cycle)
        sim.step_commit()
        for i in range(len(circuit.flops)):
            assert sim._flop_state[i] & 1 == state[i], i


@given(seed=st.integers(0, 10_000), machine=st.integers(1, 7))
@settings(max_examples=15, deadline=None)
def test_stuck_fault_machine_matches_modified_reference(seed, machine):
    """A stuck-at in machine k equals the reference evaluator run with
    that net's value forced — end-to-end fault-model equivalence."""
    circuit = random_circuit(seed, n_inputs=3, n_ops=20, n_regs=3)
    real_gates = [g for g in circuit.gates
                  if g.op not in (OP_CONST0, OP_CONST1, OP_BUF)]
    if not real_gates:
        return
    rng = random.Random(seed)
    target = rng.choice(real_gates).out
    value = rng.getrandbits(1)

    sim = Simulator(circuit, machines=8)
    sim.stick_net(target, value, machines=1 << machine)

    state = [f.init for f in circuit.flops]
    for _cycle in range(5):
        stim = {f"in{i}": rng.getrandbits(2) for i in range(3)}
        stim["rst"] = 0
        sim.step_eval(stim)
        expected_out, state = _forced_reference(circuit, stim, state,
                                                target, value)
        for name, exp in expected_out.items():
            assert sim.output(name, machine=machine) == exp
        sim.step_commit()


def _forced_reference(circuit, stim, state, forced_net, forced_value):
    """Reference evaluation with one net overridden after computing."""
    base_inputs = dict(stim)
    values = {}
    for name, nets in circuit.inputs.items():
        for bit, net in enumerate(nets):
            values[net] = (base_inputs[name] >> bit) & 1
    for i, flop in enumerate(circuit.flops):
        values[flop.q] = state[i]
    if forced_net in values:
        values[forced_net] = forced_value

    for gi in circuit.levelize():
        gate = circuit.gates[gi]
        ins = [values[n] for n in gate.inputs]
        if gate.op == OP_AND:
            v = ins[0] & ins[1]
        elif gate.op == OP_OR:
            v = ins[0] | ins[1]
        elif gate.op == OP_XOR:
            v = ins[0] ^ ins[1]
        elif gate.op == OP_NAND:
            v = 1 - (ins[0] & ins[1])
        elif gate.op == OP_NOR:
            v = 1 - (ins[0] | ins[1])
        elif gate.op == OP_XNOR:
            v = 1 - (ins[0] ^ ins[1])
        elif gate.op == OP_NOT:
            v = 1 - ins[0]
        elif gate.op == OP_BUF:
            v = ins[0]
        elif gate.op == OP_MUX:
            v = ins[1] if ins[0] else ins[2]
        elif gate.op == OP_CONST0:
            v = 0
        else:
            v = 1
        if gate.out == forced_net:
            v = forced_value
        values[gate.out] = v

    outputs = {}
    for name, nets in circuit.outputs.items():
        outputs[name] = sum(values[n] << b for b, n in enumerate(nets))
    next_state = []
    for i, flop in enumerate(circuit.flops):
        d = values[flop.d]
        q = state[i]
        en = values[flop.en] if flop.en is not None else 1
        nxt = d if en else q
        if flop.rst is not None and values[flop.rst]:
            nxt = flop.init
        next_state.append(nxt)
    return outputs, next_state
