"""Tests for the Safety Requirements Specification compliance check."""

import pytest

from repro.faultinjection import run_validation
from repro.iec61508 import (
    SIL,
    SafetyRequirementsSpecification,
)
from repro.soc import MemorySubsystem, SubsystemConfig


@pytest.fixture(scope="module")
def validated():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    from repro.faultinjection import build_environment
    env = build_environment(sub, quick=True)
    report = run_validation(sub, env=env)
    return sub, env, report


def test_srs_without_fmea_fails():
    srs = SafetyRequirementsSpecification("x", SIL.SIL3)
    outcome = srs.assess()
    assert not outcome.compliant
    assert any("FMEA" in str(i) for i in outcome.issues)


def test_srs_without_validation_flagged(validated):
    _, env, _ = validated
    srs = SafetyRequirementsSpecification(
        "x", SIL.SIL2, fmea=env.worksheet)
    outcome = srs.assess()
    assert any("validation" in str(i) for i in outcome.issues)


def test_srs_full_bundle_compliant(validated):
    _, env, report = validated
    srs = SafetyRequirementsSpecification(
        "x", SIL.SIL2, fmea=env.worksheet, validation=report,
        toggle_report=report.toggle)
    outcome = srs.assess()
    assert outcome.compliant, outcome.summary()
    assert outcome.achieved_sil is not None
    assert "COMPLIANT" in outcome.summary()


def test_srs_sff_shortfall_reported(validated):
    _, env, report = validated
    # the reduced config reaches SIL2, so a SIL3 target must fail on SFF
    srs = SafetyRequirementsSpecification(
        "x", SIL.SIL3, fmea=env.worksheet, validation=report,
        toggle_report=report.toggle)
    outcome = srs.assess()
    assert not outcome.compliant
    assert any("SFF" in str(i) for i in outcome.issues)


def test_srs_failed_validation_blocks(validated):
    _, env, report = validated

    class FailedValidation:
        passed = False
        failures = ["step x failed"]

    srs = SafetyRequirementsSpecification(
        "x", SIL.SIL2, fmea=env.worksheet,
        validation=FailedValidation())
    outcome = srs.assess()
    assert not outcome.compliant
    assert any("step x failed" in str(i) for i in outcome.issues)


def test_required_sff_passthrough():
    srs = SafetyRequirementsSpecification("x", SIL.SIL3, hft=1)
    assert srs.required_sff() == pytest.approx(0.90)


def test_paper_size_improved_reaches_sil3():
    """The E3 headline wired through the SRS machinery."""
    sub = MemorySubsystem(SubsystemConfig.improved())
    srs = SafetyRequirementsSpecification(
        "frmem", SIL.SIL3, hft=0, fmea=sub.worksheet())
    outcome = srs.assess()
    # only the validation-evidence issue remains (not run here)
    issue_kinds = {i.requirement for i in outcome.issues}
    assert issue_kinds == {"validation"}
    assert outcome.achieved_sil is SIL.SIL3
    assert outcome.sff >= 0.99
