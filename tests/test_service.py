"""Chaos and unit tests for the campaign service layer.

Covers the durable job queue (lease claim/heartbeat/backoff/dead
letter), the ``serve`` daemon's recovery story (SIGKILL a daemon
mid-job: the lease expires, a fresh daemon re-claims, and the resumed
campaign is bit-identical to the serial reference while re-simulating
only the cones the dead worker never finished), the poison-job
dead-letter + retry path, concurrent daemons never double-executing,
and the queue audits wired into ``store fsck`` (E410/E411/E412) and
``store gc``.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.faultinjection import (
    CampaignConfig,
    ParallelCampaignRunner,
    build_environment,
)
from repro.service import (
    CampaignRequest,
    CampaignService,
    JOB_DEAD,
    JOB_DONE,
    JOB_QUEUED,
    JobQueue,
    QueuePolicy,
)
from repro.service.daemon import DaemonConfig, ServiceDaemon
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.store import CampaignCache, StoreBusyError, fsck_store, \
    gc_store
from repro.store.db import StoreDB

REPO = Path(__file__).parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
CLI = [sys.executable, "-m", "repro.cli"]


@pytest.fixture(scope="module")
def env():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    return build_environment(sub, quick=True)


@pytest.fixture(scope="module")
def candidates(env):
    return env.candidates()


@pytest.fixture(scope="module")
def serial(env, candidates):
    return env.manager(CampaignConfig()).run(candidates)


def _fault_rows(campaign):
    return [(res.fault.name, res.sens_cycle, res.obse_cycle,
             res.diag_cycle, res.first_alarm, res.effects)
            for res in campaign.results]


def _outcome_count(store: Path) -> int:
    with sqlite3.connect(store / "store.db") as conn:
        return conn.execute(
            "SELECT COUNT(*) FROM outcomes").fetchone()[0]


# ----------------------------------------------------------------------
# queue lifecycle
# ----------------------------------------------------------------------
def test_submit_claim_complete_lifecycle(tmp_path):
    with JobQueue(tmp_path / "store") as queue:
        job_id = queue.submit({"variant": "small-improved"},
                              project="default")
        job = queue.job(job_id)
        assert job.status == JOB_QUEUED and job.attempts == 0

        claimed = queue.claim("w1", lease_seconds=30.0)
        assert claimed.job_id == job_id
        assert claimed.status == "leased" and claimed.attempts == 1
        assert claimed.lease_owner == "w1"
        assert claimed.lease_deadline > time.time()

        # nothing else is actionable while the lease is live
        assert queue.claim("w2") is None

        assert queue.start(job_id, "w1")
        assert queue.complete(job_id, "w1", {"measured_dc": 1.0})
        done = queue.job(job_id)
        assert done.status == JOB_DONE
        assert done.result == {"measured_dc": 1.0}
        assert done.lease_owner is None
        assert not queue.has_work()


def test_heartbeat_is_monotonic_and_owner_checked(tmp_path):
    with JobQueue(tmp_path / "store") as queue:
        job_id = queue.submit({})
        queue.claim("w1", lease_seconds=60.0)
        deadline = queue.job(job_id).lease_deadline
        # a shorter renewal never pulls the deadline backwards
        assert queue.heartbeat(job_id, "w1", lease_seconds=1.0)
        assert queue.job(job_id).lease_deadline == deadline
        # a longer one extends it
        assert queue.heartbeat(job_id, "w1", lease_seconds=120.0)
        assert queue.job(job_id).lease_deadline > deadline
        # the wrong owner cannot touch the lease
        assert not queue.heartbeat(job_id, "w2", lease_seconds=300.0)


def test_expired_lease_is_reclaimed(tmp_path):
    # skew_grace=0 so the steal is immediate (the default keeps a
    # margin for clock skew between hosts — see its own test)
    with JobQueue(tmp_path / "store",
                  policy=QueuePolicy(skew_grace=0.0)) as queue:
        job_id = queue.submit({}, max_attempts=3)
        queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        stolen = queue.claim("w2", lease_seconds=30.0)
        assert stolen.job_id == job_id
        assert stolen.attempts == 2 and stolen.lease_owner == "w2"
        # the dead worker's handle is fenced out everywhere
        assert not queue.heartbeat(job_id, "w1")
        assert queue.fail(job_id, "w1", {"kind": "late"}) is None
        assert not queue.complete(job_id, "w1", {})


def test_exhausted_expired_lease_dead_letters_at_claim(tmp_path):
    with JobQueue(tmp_path / "store",
                  policy=QueuePolicy(skew_grace=0.0)) as queue:
        job_id = queue.submit({}, max_attempts=1)
        queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        assert queue.claim("w2") is None   # nothing left to hand out
        job = queue.job(job_id)
        assert job.status == JOB_DEAD
        assert job.error["kind"] == "crash"
        assert "died or stalled" in job.error["message"]


def test_fail_backoff_then_dead_letter(tmp_path):
    policy = QueuePolicy(backoff_base=10.0, backoff_factor=2.0)
    with JobQueue(tmp_path / "store", policy=policy) as queue:
        job_id = queue.submit({}, max_attempts=2)
        queue.claim("w1")
        assert queue.fail(job_id, "w1", {"kind": "boom"}) == JOB_QUEUED
        job = queue.job(job_id)
        assert job.not_before > time.time() + 5     # backed off
        assert queue.claim("w1") is None            # still cooling
        # drop the backoff so the final attempt is claimable
        with queue.db.immediate() as conn:
            conn.execute("UPDATE jobs SET not_before=0")
        queue.claim("w1")
        assert queue.fail(job_id, "w1", {"kind": "boom"}) == JOB_DEAD
        assert queue.job(job_id).error == {"kind": "boom"}


def test_fatal_fail_skips_remaining_budget(tmp_path):
    with JobQueue(tmp_path / "store") as queue:
        job_id = queue.submit({}, max_attempts=5)
        queue.claim("w1")
        status = queue.fail(job_id, "w1", {"kind": "diagnostic"},
                            fatal=True)
        assert status == JOB_DEAD
        assert queue.job(job_id).attempts == 1


def test_retry_and_cancel(tmp_path):
    with JobQueue(tmp_path / "store") as queue:
        job_id = queue.submit({}, max_attempts=1)
        queue.claim("w1")
        queue.fail(job_id, "w1", {"kind": "boom"})
        assert queue.retry(job_id)
        job = queue.job(job_id)
        assert job.status == JOB_QUEUED
        assert job.attempts == 0 and job.error is None

        assert queue.cancel(job_id)
        assert queue.job(job_id).status == "cancelled"
        assert not queue.cancel(job_id)     # already terminal
        assert queue.retry(job_id)          # cancelled → queued again


def test_concurrent_claims_never_double_lease(tmp_path):
    """Eight threads race the claim transaction over four jobs: every
    job is handed out exactly once."""
    root = tmp_path / "store"
    with JobQueue(root) as queue:
        for _ in range(4):
            queue.submit({})

    def grab(worker: int):
        with JobQueue(root) as queue:
            got = []
            while True:
                job = queue.claim(f"w{worker}", lease_seconds=60.0)
                if job is None:
                    return got
                got.append(job.job_id)

    with ThreadPoolExecutor(max_workers=8) as pool:
        batches = list(pool.map(grab, range(8)))
    claimed = [job_id for batch in batches for job_id in batch]
    assert sorted(claimed) == [1, 2, 3, 4]      # no duplicates


def test_skew_grace_boundary_fences_steal(tmp_path):
    """An expired lease is stealable only once it is *more than*
    ``skew_grace`` past its deadline: inside the margin the (possibly
    just slow-clocked) owner keeps the job; past it the owner is
    presumed dead."""
    grace = 10.0
    with JobQueue(tmp_path / "store",
                  policy=QueuePolicy(skew_grace=grace)) as queue:
        job_id = queue.submit({}, max_attempts=5)
        queue.claim("w1", lease_seconds=30.0)

        def expire(offset: float) -> None:
            with queue.db.immediate() as conn:
                conn.execute(
                    "UPDATE jobs SET lease_deadline=?"
                    " WHERE job_id=?",
                    (time.time() + offset, job_id))

        # deadline passed, but still inside the grace: not stealable
        expire(-grace + 5.0)
        assert queue.claim("w2") is None
        # ... and the live owner can still renew its lease
        assert queue.heartbeat(job_id, "w1", lease_seconds=30.0)

        # deadline more than the grace ago: presumed dead, stolen
        expire(-grace - 5.0)
        stolen = queue.claim("w2", lease_seconds=30.0)
        assert stolen is not None and stolen.job_id == job_id
        assert stolen.lease_owner == "w2" and stolen.attempts == 2
        # the previous owner is fenced out from here on
        assert not queue.heartbeat(job_id, "w1")


def test_release_refund_is_fenced_after_concurrent_claim(tmp_path):
    """``release()`` refunds the claim-time attempt — but only for
    the *current* owner.  A dead worker's late release racing a
    concurrent re-claim must not refund the new owner's attempt (the
    linearization: the steal commits first, the stale release is a
    no-op)."""
    with JobQueue(tmp_path / "store",
                  policy=QueuePolicy(skew_grace=0.0)) as queue:
        job_id = queue.submit({}, max_attempts=3)
        queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        stolen = queue.claim("w2", lease_seconds=60.0)
        assert stolen.attempts == 2
        # w1 wakes up late and tries to hand the job back
        assert not queue.release(job_id, "w1")
        job = queue.job(job_id)
        assert job.attempts == 2 and job.lease_owner == "w2"
        # the rightful owner's release refunds its attempt and
        # records why, without dead-letter semantics
        assert queue.release(job_id, "w2",
                             error={"kind": "io-pause"})
        job = queue.job(job_id)
        assert job.status == JOB_QUEUED and job.lease_owner is None
        assert job.attempts == 1
        assert job.error == {"kind": "io-pause"}
        # the preserved budget is claimable again immediately
        assert queue.claim("w3").attempts == 2


def test_racing_idempotent_submitters_converge(tmp_path):
    """Eight submitters race one idempotency key over separate
    connections: exactly one INSERT wins and every caller gets the
    same job id back (check-then-insert in one BEGIN IMMEDIATE,
    backstopped by the partial unique index)."""
    root = tmp_path / "store"
    with JobQueue(root):
        pass                        # create the schema up front
    barrier = threading.Barrier(8)

    def submit(worker: int):
        with JobQueue(root) as queue:
            barrier.wait(timeout=30)
            return queue.submit_idempotent(
                {"variant": "small-improved"},
                idempotency_key="race-key")

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(submit, range(8)))
    ids = {job_id for job_id, _ in results}
    assert len(ids) == 1
    assert sum(1 for _, deduped in results if not deduped) == 1
    (job_id,) = ids

    with JobQueue(root) as queue:
        jobs = queue.jobs()
        assert len(jobs) == 1
        assert jobs[0].idempotency_key == "race-key"
        # keys are scoped per project: another namespace is free to
        # reuse the string
        other, deduped = queue.submit_idempotent(
            {}, project="silicon-b", idempotency_key="race-key")
        assert not deduped and other != job_id
        # cancelling releases the key for a fresh enqueue
        assert queue.cancel(job_id)
        fresh, deduped = queue.submit_idempotent(
            {}, idempotency_key="race-key")
        assert not deduped and fresh != job_id


# ----------------------------------------------------------------------
# store-busy hardening (E409)
# ----------------------------------------------------------------------
def test_locked_store_raises_coded_busy_error(tmp_path, monkeypatch):
    from repro.store import db as dbmod
    monkeypatch.setattr(dbmod, "BUSY_RETRIES", 3)
    monkeypatch.setattr(dbmod, "BUSY_BACKOFF_BASE", 0.01)
    db = StoreDB(tmp_path / "store.db")
    db._conn.execute("PRAGMA busy_timeout=20")
    blocker = sqlite3.connect(db.path)
    try:
        blocker.execute("BEGIN IMMEDIATE")
        with pytest.raises(StoreBusyError) as excinfo:
            with db.immediate():
                pass
        assert excinfo.value.report.codes() == {"E409"}
    finally:
        blocker.rollback()
        blocker.close()
        db.close()


def test_busy_write_succeeds_after_lock_clears(tmp_path, monkeypatch):
    from repro.store import db as dbmod
    monkeypatch.setattr(dbmod, "BUSY_BACKOFF_BASE", 0.05)
    db = StoreDB(tmp_path / "store.db")
    db._conn.execute("PRAGMA busy_timeout=20")
    blocker = sqlite3.connect(db.path)
    try:
        blocker.execute("BEGIN IMMEDIATE")
        attempts = []

        def txn():
            attempts.append(1)
            if len(attempts) == 2:
                blocker.rollback()   # contention clears mid-retry
            return db._conn.execute("BEGIN IMMEDIATE")

        db._write(txn)
        db._conn.rollback()
        assert len(attempts) >= 2
    finally:
        blocker.close()
        db.close()


# ----------------------------------------------------------------------
# the service core is the CLI, verbatim
# ----------------------------------------------------------------------
def test_run_campaign_matches_serial_reference(tmp_path, serial,
                                               candidates):
    service = CampaignService(tmp_path / "store")
    outcome = service.run_campaign(
        CampaignRequest(variant="small-improved"))
    assert outcome.exit_code == 0
    assert outcome.faults == len(candidates.faults)
    assert outcome.measured_dc == serial.measured_dc()
    assert outcome.safe_fraction == serial.measured_safe_fraction()
    assert "measured DC:" in outcome.out
    assert outcome.run_id is not None and outcome.simulated > 0


def test_project_namespaces_isolate_evidence(tmp_path):
    root = tmp_path / "store"
    service = CampaignService(root, project="silicon-a")
    assert service.store_path() == root / "projects" / "silicon-a"
    assert CampaignService(root).store_path() == root
    # the queue is shared: a job submitted under any project lands in
    # the root index
    job_id = service.submit(CampaignRequest(variant="small-improved"))
    job = CampaignService(root).status(job_id)
    assert job.project == "silicon-a"


# ----------------------------------------------------------------------
# daemon execution
# ----------------------------------------------------------------------
def test_daemon_drain_executes_submitted_job(tmp_path, serial,
                                             candidates):
    root = tmp_path / "store"
    service = CampaignService(root)
    job_id = service.submit(CampaignRequest(variant="small-improved"))
    code = ServiceDaemon(root, DaemonConfig(
        drain=True, verbose=False)).serve()
    assert code == 0
    job = service.status(job_id)
    assert job.status == JOB_DONE and job.attempts == 1
    assert job.result["measured_dc"] == serial.measured_dc()
    assert job.result["faults"] == len(candidates.faults)
    assert job.run_id is not None
    # the job's evidence landed in the content-addressed store
    with CampaignCache(root) as cache:
        assert cache.db.run(job.run_id)["status"] == "done"
        assert cache.db.outcome_count() == len(candidates.faults)


def test_poison_job_dead_letters_with_diagnostic(tmp_path, env,
                                                 serial, capsys):
    """A job whose spec references a missing stimuli file is
    deterministic poison: dead-lettered on the first attempt with the
    coded diagnostic and no traceback, revivable with ``jobs retry``
    once the cause is fixed."""
    from repro.cli import main
    from repro.faultinjection.environment import save_stimuli

    root = tmp_path / "store"
    stimuli = tmp_path / "campaign_stimuli.json"
    service = CampaignService(root)
    job_id = service.submit(CampaignRequest(
        variant="small-improved", stimuli=str(stimuli)))
    assert ServiceDaemon(root, DaemonConfig(
        drain=True, verbose=False)).serve() == 3

    job = service.status(job_id)
    assert job.status == JOB_DEAD
    assert job.attempts == 1                  # fatal: no blind retry
    assert job.error["kind"] == "diagnostic"
    assert "E2" in job.error["detail"]        # the coded cause
    assert "Traceback" not in json.dumps(job.error)

    # `jobs list` holds exit 3 while the dead letter exists
    assert main(["--store", str(root), "jobs", "list"]) == 3
    out = capsys.readouterr()
    assert f"| {job_id} " in out.out and "dead" in out.out
    assert "Traceback" not in out.out + out.err

    # fix the cause, revive the job, and the daemon completes it
    save_stimuli(env.stimuli, stimuli)
    assert main(["--store", str(root), "jobs", "retry",
                 str(job_id)]) == 0
    capsys.readouterr()
    assert ServiceDaemon(root, DaemonConfig(
        drain=True, verbose=False)).serve() == 0
    job = service.status(job_id)
    assert job.status == JOB_DONE
    assert job.result["measured_dc"] == serial.measured_dc()
    assert main(["--store", str(root), "jobs", "list"]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# chaos: SIGKILL the daemon mid-job
# ----------------------------------------------------------------------
def test_sigkill_daemon_job_resumes_from_store(tmp_path, serial,
                                               candidates):
    """Kill ``serve`` mid-campaign.  The lease expires, a fresh
    daemon re-claims the job, and the store resume guarantees the
    second attempt simulates exactly the cones the dead worker never
    recorded — with final metrics bit-identical to the serial run."""
    root = tmp_path / "store"
    total = len(candidates.faults)
    submit = subprocess.run(
        CLI + ["--store", str(root), "jobs", "submit",
               "--variant", "small-improved",
               "--machines-per-pass", "8"],
        cwd=tmp_path, env=ENV, capture_output=True, timeout=120)
    assert submit.returncode == 0, submit.stderr

    serve = CLI + ["--store", str(root), "serve", "--drain",
                   "--lease", "2", "--heartbeat-interval", "0.2",
                   "--poll-interval", "0.1"]
    proc = subprocess.Popen(serve, cwd=tmp_path, env=ENV,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if 0 < _outcome_count(root):
                break
            time.sleep(0.02)
        else:
            raise AssertionError("no outcome persisted before "
                                 "timeout")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    persisted = _outcome_count(root)
    assert 0 < persisted, "kill landed before any evidence"
    with JobQueue(root) as queue:
        job = queue.jobs()[0]
        assert job.status in ("leased", "running")
        assert job.attempts == 1

    second = subprocess.run(serve, cwd=tmp_path, env=ENV,
                            capture_output=True, timeout=300)
    out = second.stdout.decode()
    assert second.returncode == 0, out
    with JobQueue(root) as queue:
        job = queue.jobs()[0]
    assert job.status == JOB_DONE
    assert job.attempts == 2                    # one claim per daemon
    result = job.result
    assert result["faults"] == total
    # store-resume proof: the re-claimed attempt was served the dead
    # worker's persisted cones and simulated only the remainder
    if persisted < total:
        assert result["hits"] == persisted
        assert result["simulated"] == total - persisted
    assert result["measured_dc"] == serial.measured_dc()
    assert result["safe_fraction"] == serial.measured_safe_fraction()

    # and the store as a whole replays warm — zero re-simulation —
    # with metrics bit-identical to the reference
    service = CampaignService(root)
    replay = service.run_campaign(
        CampaignRequest(variant="small-improved"))
    assert replay.exit_code == 0
    assert replay.simulated == 0 and replay.hits == total
    assert replay.measured_dc == serial.measured_dc()


def test_two_daemons_never_double_execute(tmp_path):
    """Two draining daemons over two queued jobs: each job runs
    exactly once (attempts == 1) and both daemons exit clean."""
    root = tmp_path / "store"
    for _ in range(2):
        submit = subprocess.run(
            CLI + ["--store", str(root), "jobs", "submit",
                   "--variant", "small-improved", "--sample", "24"],
            cwd=tmp_path, env=ENV, capture_output=True, timeout=120)
        assert submit.returncode == 0, submit.stderr
    serve = CLI + ["--store", str(root), "serve", "--drain",
                   "--lease", "30", "--poll-interval", "0.1"]
    procs = [subprocess.Popen(serve, cwd=tmp_path, env=ENV,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT)
             for _ in range(2)]
    outs = [p.communicate(timeout=300)[0].decode() for p in procs]
    assert all(p.returncode == 0 for p in procs), outs
    with JobQueue(root) as queue:
        jobs = queue.jobs()
    assert [job.status for job in jobs] == [JOB_DONE, JOB_DONE]
    assert [job.attempts for job in jobs] == [1, 1]


# ----------------------------------------------------------------------
# fsck + gc queue audits
# ----------------------------------------------------------------------
def test_fsck_detects_and_repairs_queue_faults(tmp_path):
    root = tmp_path / "store"
    with JobQueue(root) as queue:
        stale_id = queue.submit({})
        queue.claim("ghost", lease_seconds=0.01)
        orphan_id = queue.submit({})
        dead_id = queue.submit({}, max_attempts=1)
        healthy_id = queue.submit({})
        with queue.db.immediate() as conn:
            # an active job pointing at a run the store never recorded
            conn.execute("UPDATE jobs SET run_id=991 WHERE job_id=?",
                         (orphan_id,))
            # a dead letter whose evidence was collected
            conn.execute(
                "UPDATE jobs SET status='dead', run_id=992,"
                " error='{\"kind\": \"crash\"}' WHERE job_id=?",
                (dead_id,))
    time.sleep(0.05)

    with CampaignCache(root) as cache:
        audit = fsck_store(cache, repair=False)
        assert {"E410", "E411", "E412"} <= audit.report.codes()
        result = fsck_store(cache, repair=True)
        assert len(result.repaired) >= 3

    with JobQueue(root) as queue:
        assert queue.job(stale_id).status == JOB_QUEUED   # released
        assert queue.job(orphan_id).run_id is None        # cleared
        assert queue.job(dead_id) is None                 # deleted
        healthy = queue.job(healthy_id)
        assert healthy.status == JOB_QUEUED               # untouched
        clean = fsck_store(CampaignCache(root), repair=False)
        assert not {"E410", "E411", "E412"} & clean.report.codes()


def test_gc_keeps_runs_of_active_jobs(tmp_path, env, candidates):
    root = tmp_path / "store"
    with CampaignCache(root) as cache:
        ParallelCampaignRunner(env.spec(), workers=1,
                               cache=cache).run(candidates)
        first_run = cache.db.runs()[-1]["run_id"]
    with CampaignCache(root) as cache:
        ParallelCampaignRunner(env.spec(), workers=1,
                               cache=cache).run(candidates)

    with JobQueue(root) as queue:
        job_id = queue.submit({})
        job = queue.claim("w1", lease_seconds=60.0)
        assert job.job_id == job_id
        assert queue.record_run(job_id, "w1", first_run)

    # keep_runs=1 would normally drop the older run — but a leased
    # job still references it, so gc must keep the evidence alive
    with CampaignCache(root) as cache:
        gc_store(cache, keep_runs=1)
        kept = [r["run_id"] for r in cache.db.runs()]
        assert first_run in kept and len(kept) == 2

    with JobQueue(root) as queue:
        queue.complete(job_id, "w1", {})
    with CampaignCache(root) as cache:
        gc_store(cache, keep_runs=1)
        assert first_run not in \
            [r["run_id"] for r in cache.db.runs()]
