"""Tests for the §5 fault-injection environment."""

import pytest

from repro.faultinjection import (
    BridgeFault,
    CampaignConfig,
    CandidateList,
    CoverageCollection,
    FaultListConfig,
    FaultResult,
    GlobalStuckFault,
    MemFlipFault,
    MemStuckFault,
    OUTCOME_DD,
    OUTCOME_DETECTED_SAFE,
    OUTCOME_DU,
    OUTCOME_SAFE,
    ResultAnalyzer,
    SeuFault,
    StuckNetFault,
    build_environment,
    collapse,
    generate_cone_faults,
    generate_gate_faults,
    generate_zone_faults,
    profile_workload,
    randomize,
    run_validation,
    simulate_faults,
)
from repro.soc import (
    MemorySubsystem,
    SubsystemConfig,
    validation_workload,
)
from repro.zones import predict_effects_table


@pytest.fixture(scope="module")
def improved():
    return MemorySubsystem(SubsystemConfig.small_improved())


@pytest.fixture(scope="module")
def baseline():
    return MemorySubsystem(SubsystemConfig.small_baseline())


@pytest.fixture(scope="module")
def env(improved):
    return build_environment(improved, quick=True)


@pytest.fixture(scope="module")
def campaign(env):
    return env.manager(CampaignConfig()).run(env.candidates())


# ----------------------------------------------------------------------
# operational profiler
# ----------------------------------------------------------------------
def test_profile_records_flop_toggles(env):
    profile = env.profile()
    assert profile.length == len(env.stimuli)
    # the BIST counter toggles constantly during the BIST phase
    assert any("memctrl/bist/cnt" in name
               for name in profile.flop_toggles)


def test_profile_records_memory_traffic(env):
    profile = env.profile()
    accesses = profile.mem_accesses["memarray/array"]
    assert any(a.write for a in accesses)
    assert any(not a.write for a in accesses)


def test_profile_zone_activity_guides_injection(env):
    import random
    profile = env.profile()
    zone = env.zone_set.by_name("fmem/decoder/pipe_data[0:3]")
    cycles = profile.injection_cycles(zone, random.Random(0), 5)
    assert len(cycles) == 5
    assert all(0 <= c < profile.length for c in cycles)


def test_profile_completeness(env):
    triggered, total = env.profile().completeness(env.zone_set)
    assert triggered / total > 0.8


def test_untriggered_zone_detected(improved):
    # two idle cycles exercise almost nothing
    profile = profile_workload(improved.circuit,
                               [improved.idle(), improved.idle()])
    triggered, total = profile.completeness(
        improved.extract_zones())
    assert triggered < total


# ----------------------------------------------------------------------
# fault lists
# ----------------------------------------------------------------------
def test_zone_fault_generation(env):
    candidates = env.candidates(FaultListConfig(seed=5))
    assert len(candidates) > 40
    kinds = {f.kind for f in candidates.faults}
    assert {"seu", "stuck", "mem_flip", "mem_stuck"} <= kinds
    # every fault is attributed to a zone
    assert all(f.zone for f in candidates.faults)


def test_fault_list_deterministic(env):
    a = env.candidates(FaultListConfig(seed=9))
    b = env.candidates(FaultListConfig(seed=9))
    assert [f.name for f in a.faults] == [f.name for f in b.faults]


def test_collapse_removes_duplicates():
    f = StuckNetFault(target="x", value=1)
    collapsed = collapse(CandidateList(faults=[f, f, f]))
    assert len(collapsed) == 1


def test_randomize_samples(env):
    candidates = env.candidates()
    sampled = randomize(candidates, 10, seed=3)
    assert len(sampled) == 10
    assert set(f.name for f in sampled.faults) <= \
        set(f.name for f in candidates.faults)


def test_gate_fault_universe(improved):
    universe = generate_gate_faults(improved.circuit)
    # two polarities per gate, buffers/constants skipped
    assert len(universe) > improved.circuit.gate_count()
    assert all(f.kind == "stuck" for f in universe.faults)


def test_gate_faults_path_filter(improved):
    only_coder = generate_gate_faults(improved.circuit,
                                      paths=("fmem/coder",))
    assert 0 < len(only_coder) < len(
        generate_gate_faults(improved.circuit))


def test_cone_fault_generation(env):
    # the write-buffer check register's cone is the coder XOR tree
    zones = [z.name for z in env.zone_set.zones
             if z.name.startswith("fmem/wbuf/check")][:1]
    faults = generate_cone_faults(env.zone_set, env.circuit, zones,
                                  per_zone=10)
    assert 0 < len(faults) <= 10
    assert all(f.zone == zones[0] for f in faults.faults)


# ----------------------------------------------------------------------
# campaign manager
# ----------------------------------------------------------------------
def test_campaign_runs_all_faults(env, campaign):
    candidates = env.candidates()
    assert len(campaign.results) == len(candidates)
    assert campaign.passes >= 1


def test_campaign_outcomes_partition(campaign):
    counts = campaign.outcomes()
    assert sum(counts.values()) == len(campaign.results)
    assert counts[OUTCOME_DD] > 0          # diagnostics fire
    assert counts[OUTCOME_SAFE] + counts[OUTCOME_DETECTED_SAFE] > 0


def test_campaign_measured_dc_high_for_improved(campaign):
    # the improved design detects nearly all dangerous failures
    assert campaign.measured_dc() > 0.85


def test_sens_triggers_recorded(campaign):
    with_sens = [r for r in campaign.results
                 if r.sens_cycle is not None]
    assert len(with_sens) > len(campaign.results) * 0.7


def test_effects_recorded_with_alarms(campaign):
    alarms = set()
    for res in campaign.results:
        alarms.update(k for k in res.effects if k.startswith("alarm"))
    assert "alarm_ce" in alarms


def test_outcome_classification_rules():
    fault = SeuFault(target="x", zone="z")
    assert FaultResult(fault).outcome(8) == OUTCOME_SAFE
    assert FaultResult(fault, diag_cycle=4).outcome(8) == \
        OUTCOME_DETECTED_SAFE
    assert FaultResult(fault, obse_cycle=10, diag_cycle=12).outcome(8) \
        == OUTCOME_DD
    assert FaultResult(fault, obse_cycle=10, diag_cycle=30).outcome(8) \
        == OUTCOME_DU
    assert FaultResult(fault, obse_cycle=10).outcome(8) == OUTCOME_DU
    # inside a test window the mismatch itself is the detection
    assert FaultResult(fault, obse_cycle=10).outcome(
        8, test_windows=((0, 20),)) == OUTCOME_DD


def test_detection_window_enforced():
    fault = SeuFault(target="x", zone="z")
    res = FaultResult(fault, obse_cycle=5, diag_cycle=20)
    assert res.outcome(30) == OUTCOME_DD
    assert res.outcome(5) == OUTCOME_DU


def _operational_pipe_campaign(sub):
    """SEUs in the decoder pipe during plain (non-test) traffic.

    Test phases count observed mismatches as detected (the test's
    compare flags them), so the baseline blind spot is only measurable
    during operational traffic — as in a real mission profile.
    """
    from repro.faultinjection import FaultInjectionManager
    ops = [sub.reset_op(), sub.reset_op(), sub.write(3, 0x5A),
           sub.idle(), sub.idle()]
    read_cycles = []
    for _ in range(4):
        read_cycles.append(len(ops))
        ops.append(sub.read(3))
        ops.extend([sub.idle(), sub.idle(), sub.idle()])
    zone_set = sub.extract_zones()
    pipe_flops = [f.name for f in sub.circuit.flops
                  if "pipe_data" in f.name][:4]
    zone = next(z.name for z in zone_set.zones
                if "pipe_data" in z.name
                and any(f in z.flops for f in pipe_flops))
    faults = [SeuFault(target=flop, zone=zone, offset=cycle + 2)
              for flop, cycle in zip(pipe_flops, read_cycles)]
    manager = FaultInjectionManager(
        sub.circuit, ops, zone_set=zone_set,
        setup=lambda sim: sub.preload(sim, {}))
    return manager.run(CandidateList(faults=faults))


def test_baseline_pipe_zone_has_undetected(baseline):
    """The §6 baseline blind spot shows up as DU in the campaign."""
    counts = _operational_pipe_campaign(baseline).outcomes()
    assert counts[OUTCOME_DU] > 0


def test_improved_pipe_zone_detected(improved):
    counts = _operational_pipe_campaign(improved).outcomes()
    assert counts[OUTCOME_DU] == 0
    assert counts[OUTCOME_DD] > 0


# ----------------------------------------------------------------------
# coverage collection
# ----------------------------------------------------------------------
def test_coverage_ratios():
    cov = CoverageCollection(sens={"a": True, "b": False},
                             obse={"y": True}, diag={"d": False})
    assert cov.sens_coverage() == pytest.approx(0.5)
    assert cov.obse_coverage() == 1.0
    assert cov.diag_coverage() == 0.0
    assert not cov.complete
    assert cov.uncovered()["sens"] == ["b"]


def test_coverage_merge():
    a = CoverageCollection(sens={"z": False}, diag={"d": True})
    b = CoverageCollection(sens={"z": True}, diag={"d": False})
    a.merge(b)
    assert a.sens["z"] and a.diag["d"]


def test_campaign_coverage_items(campaign):
    cov = campaign.coverage
    assert cov.injections == len(campaign.results)
    assert cov.sens_coverage() > 0.8
    assert cov.report().startswith("=== injection coverage ===")


# ----------------------------------------------------------------------
# result analyzer
# ----------------------------------------------------------------------
def test_zone_measurements_aggregate(campaign):
    analyzer = ResultAnalyzer(campaign)
    measurements = analyzer.zone_measurements()
    assert measurements
    total = sum(m.total for m in measurements)
    assert total == len(campaign.results)
    for m in measurements:
        if m.measured_ddf is not None:
            assert 0.0 <= m.measured_ddf <= 1.0


def test_fill_worksheet_records_measurements(env, campaign):
    analyzer = ResultAnalyzer(campaign)
    updated = analyzer.fill_worksheet(env.worksheet)
    assert updated > 0
    assert env.worksheet.measured_rows()


def test_effects_table_and_consistency(env, campaign):
    analyzer = ResultAnalyzer(campaign)
    table = analyzer.effects_table()
    assert table
    predicted = predict_effects_table(env.zone_set)
    comparison = analyzer.compare_effects(predicted)
    # every measured effect must be structurally reachable
    assert comparison.consistent, comparison.violations


def test_agreement_rows(env, campaign):
    analyzer = ResultAnalyzer(campaign)
    analyzer.fill_worksheet(env.worksheet)
    rows = analyzer.agreement_rows(env.worksheet)
    assert rows
    assert all(0 <= r["measured"] <= 1 for r in rows)


def test_reports_render(env, campaign):
    analyzer = ResultAnalyzer(campaign)
    analyzer.fill_worksheet(env.worksheet)
    assert "injection outcomes" in analyzer.outcome_report()
    assert "claimed vs measured" in \
        analyzer.agreement_report(env.worksheet)


# ----------------------------------------------------------------------
# fault simulator
# ----------------------------------------------------------------------
def test_fault_simulator_coverage(improved):
    workload = validation_workload(improved, quick=True)
    faults = generate_gate_faults(improved.circuit,
                                  paths=("fmem/decoder",))
    report = simulate_faults(improved.circuit, workload,
                             candidates=faults,
                             setup=lambda s: improved.preload(s, {}))
    assert report.total == len(faults)
    assert 0.3 < report.coverage <= 1.0
    assert report.detected + len(report.undetected_names) == report.total


def test_fault_simulator_nothing_detected_without_stimuli(improved):
    faults = generate_gate_faults(improved.circuit,
                                  paths=("fmem/decoder",))
    report = simulate_faults(improved.circuit, [improved.idle()] * 3,
                             candidates=faults,
                             setup=lambda s: improved.preload(s, {}))
    assert report.coverage < 0.5


# ----------------------------------------------------------------------
# wide / global faults
# ----------------------------------------------------------------------
def test_bridge_fault_runs(env):
    net_a = env.circuit.net_names[env.circuit.flops[0].q]
    net_b = env.circuit.net_names[env.circuit.flops[1].q]
    fault = BridgeFault(target=net_a, victim=net_b, zone=None)
    campaign = env.manager().run(CandidateList(faults=[fault]))
    assert len(campaign.results) == 1


def test_global_fault_affects_everything(env):
    rst_nets = tuple(env.circuit.net_names[n]
                     for n in env.circuit.inputs["rst"])
    fault = GlobalStuckFault(target="rst", nets=rst_nets, value=1)
    campaign = env.manager().run(CandidateList(faults=[fault]))
    res = campaign.results[0]
    assert res.obse_cycle is not None or res.effects


def test_mem_fault_descriptors_names():
    assert "mem_flip" in MemFlipFault(target="m", word=3, bit=2).name
    assert "mem_stuck1" in MemStuckFault(target="m", word=1, bit=0,
                                         value=1).name


# ----------------------------------------------------------------------
# environment
# ----------------------------------------------------------------------
def test_environment_config_dict(env):
    cfg = env.as_config_dict()
    assert cfg["zones"] == len(env.zone_set.zones)
    assert cfg["cycles"] == len(env.stimuli)
    assert "hrdata" in cfg["observation_points"]
    assert any(p.startswith("alarm") for p in cfg["diagnostic_points"])


def test_environment_profile_cached(env):
    assert env.profile() is env.profile()


# ----------------------------------------------------------------------
# full validation flow
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["baseline", "improved"])
def test_validation_flow_passes(variant, baseline, improved):
    sub = baseline if variant == "baseline" else improved
    report = run_validation(sub)
    assert report.passed, report.summary()
    names = [s.name for s in report.steps]
    assert names == sorted(names)
    assert any("a:" in n for n in names)
    assert any("b:" in n for n in names)
    assert report.coverage is not None and report.coverage.complete


def test_validation_report_summary_format(improved):
    report = run_validation(improved)
    text = report.summary()
    assert "FMEA validation flow" in text
    assert "overall: PASS" in text


def test_analyzer_csv_export(env, campaign, tmp_path):
    analyzer = ResultAnalyzer(campaign)
    path = tmp_path / "campaign.csv"
    analyzer.save_csv(path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(campaign.results) + 1
    assert lines[0].startswith("fault,kind,zone,persistence,outcome")
    # outcomes in the export match the classification
    body = "\n".join(lines[1:])
    for outcome, count in campaign.outcomes().items():
        assert body.count(outcome) >= count


def test_mbu_fault_defeats_correction(improved):
    """An adjacent double-bit upset is detected (UE) but the data is
    lost — the SEC-DED residual that motivates scrubbing."""
    from repro.faultinjection import MbuFault
    from repro.soc import AhbMaster
    master = AhbMaster(improved)
    master.reset()
    master.write(6, 0x3C)
    MbuFault(target="memarray/array", zone=None, word=6, bit=1,
             span=2).arm(master.sim, machine=0, t0=master.sim.cycle)
    result = master.read(6)
    assert result.alarms["alarm_ue"] == 1
    assert result.alarms["alarm_ce"] == 0
