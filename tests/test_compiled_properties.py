"""Property tests for the compiler front-end plus compiled-engine
regression anchors.

* levelization yields a valid topological order for any fuzzed DAG;
* combinational loops are rejected at compile time with the stable
  coded diagnostic ``E120`` — not a raw traceback;
* ``decompile(compile_circuit(c))`` preserves ``structural_hash`` (the
  content address the campaign store keys on), so compiled campaigns
  hit the same store rows as interpreted ones;
* the compiled engine reproduces the committed golden campaign file
  byte for byte;
* a store populated by one engine is served entirely from cache by the
  other — zero faults re-simulated in either direction.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinjection import CampaignConfig, ENGINE_COMPILED, \
    ENGINE_INTERPRETED, ParallelCampaignRunner, build_environment
from repro.hdl import Simulator, compile_circuit
from repro.hdl.compiled import CompileError, LOOP_CODE, decompile
from repro.hdl.netlist import OP_AND, OP_CONST0, OP_CONST1, OP_OR, Circuit
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.minicpu import CpuConfig, MiniCpu
from repro.store import CampaignCache

from .test_compiled_differential import fuzz_circuit

DATA = Path(__file__).parent / "data"


# ----------------------------------------------------------------------
# levelization: topological order for any fuzzed DAG
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 100_000))
@settings(max_examples=60, deadline=None)
def test_levelization_is_topological(seed):
    """Every gate is scheduled strictly after all of its inputs.

    ``bucket_of`` maps original nets to overlay buckets: 0 for sources
    (inputs, flop outputs, memory read data, constants) and
    ``level + 1`` for gate outputs — a valid schedule therefore has
    ``bucket_of[gate.out] > bucket_of[input]`` for every gate edge.
    """
    circuit = fuzz_circuit(seed)
    cc = compile_circuit(circuit)
    bucket = cc.bucket_of
    logic_driven = {g.out for g in circuit.gates
                    if g.op not in (OP_CONST0, OP_CONST1)}
    for gate in circuit.gates:
        if gate.op in (OP_CONST0, OP_CONST1):
            # constants are overlaid with the sources, before level 0
            assert bucket[gate.out] == 0
            continue
        assert bucket[gate.out] >= 1
        for net in gate.inputs:
            assert bucket[gate.out] > bucket[net], \
                (seed, gate.op, gate.out, net)
    for net in range(circuit.num_nets):
        if net not in logic_driven:
            assert bucket[net] == 0, (seed, net)


def test_combinational_loop_rejected_with_coded_diagnostic():
    c = Circuit(name="loop")
    x = c.new_net("x")
    a = c.new_net("a")
    b = c.new_net("b")
    c.inputs["x"] = [x]
    c.add_gate(OP_AND, (x, b), a)
    c.add_gate(OP_OR, (a, x), b)
    c.outputs["y"] = [b]
    with pytest.raises(CompileError) as exc:
        compile_circuit(c)
    assert exc.value.code == LOOP_CODE == "E120"


# ----------------------------------------------------------------------
# compile -> decompile round-trip: content address preserved
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_structural_hash(seed):
    circuit = fuzz_circuit(seed)
    restored = decompile(compile_circuit(circuit))
    assert restored.structural_hash() == circuit.structural_hash()


@pytest.mark.parametrize("circuit_fn", [
    lambda: MemorySubsystem(SubsystemConfig.small_improved()).circuit,
    lambda: MiniCpu(CpuConfig.lockstep_pair()).circuit,
], ids=["fmem", "minicpu"])
def test_roundtrip_preserves_structural_hash_real_designs(circuit_fn):
    circuit = circuit_fn()
    restored = decompile(compile_circuit(circuit))
    assert restored.structural_hash() == circuit.structural_hash()


@given(seed=st.integers(0, 100_000))
@settings(max_examples=10, deadline=None)
def test_decompiled_circuit_simulates_identically(seed):
    """The round-tripped netlist is behaviourally the original."""
    import random
    circuit = fuzz_circuit(seed)
    restored = decompile(compile_circuit(circuit))
    a = Simulator(circuit)
    b = Simulator(restored)
    rng = random.Random(seed)
    widths = {n: len(v) for n, v in circuit.inputs.items()}
    for _ in range(6):
        stim = {n: rng.getrandbits(w) for n, w in widths.items()}
        a.step_eval(stim)
        b.step_eval(stim)
        for name in circuit.outputs:
            assert a.output(name) == b.output(name)
        a.step_commit()
        b.step_commit()


# ----------------------------------------------------------------------
# golden-file regression: compiled engine, byte-identical JSON
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fmem_env():
    return build_environment(
        MemorySubsystem(SubsystemConfig.small_improved()), quick=True)


def _summary(campaign) -> dict:
    from .test_parallel_campaign import campaign_summary
    return campaign_summary(campaign)


def test_compiled_campaign_matches_golden_file(fmem_env):
    """The compiled engine reproduces the frozen fmem campaign JSON
    byte for byte (canonical serialization of both sides)."""
    campaign = fmem_env.manager(
        CampaignConfig(engine=ENGINE_COMPILED)).run(
            fmem_env.candidates())
    expected = json.loads(
        (DATA / "fmem_small_campaign.json").read_text())
    canon = dict(sort_keys=True, separators=(",", ":"))
    assert json.dumps(_summary(campaign), **canon) == \
        json.dumps(expected, **canon)


# ----------------------------------------------------------------------
# cache interop: the store is engine-agnostic
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cold,warm", [
    (ENGINE_COMPILED, ENGINE_INTERPRETED),
    (ENGINE_INTERPRETED, ENGINE_COMPILED),
], ids=["compiled-then-interpreted", "interpreted-then-compiled"])
def test_cache_interop_between_engines(fmem_env, tmp_path, cold, warm):
    """Outcomes stored by one engine fully warm the other: engine and
    pass width never enter the fingerprint, so the second run
    simulates nothing."""
    candidates = fmem_env.candidates()

    def run(engine, cache):
        spec = fmem_env.spec(CampaignConfig(engine=engine))
        return ParallelCampaignRunner(spec, cache=cache).run(candidates)

    with CampaignCache(tmp_path / "store") as cache:
        first = run(cold, cache)
        assert cache.stats.simulated == len(candidates.faults)

    with CampaignCache(tmp_path / "store") as cache:
        second = run(warm, cache)
        assert cache.stats.simulated == 0
        assert cache.stats.misses == 0
        assert cache.stats.hits == len(candidates.faults)

    rows = lambda c: [(r.fault.name, r.sens_cycle, r.obse_cycle,
                       r.diag_cycle, r.first_alarm, r.effects)
                      for r in c.results]
    assert rows(first) == rows(second)
    assert first.outcomes() == second.outcomes()
