"""Tests for :mod:`repro.explore` — transforms, Pareto search,
dossier — and the store-level guarantees the search leans on:

* a mitigation applied to one bank is *local*: the run diff names
  only that bank's zones, and the warm-hit count equals the number
  of provably untouched fault cones;
* every frontier variant's incremental metrics are bit-identical to
  a cold, cache-free campaign over the same design point.
"""

import pytest

from repro.explore import (
    TRANSFORM_LIBRARY,
    DesignPoint,
    ExploreConfig,
    ParetoFront,
    explore,
    render_explore_dossier,
    structural_cost,
    touched_zones,
    transforms_for_zone,
)
from repro.explore.search import EvaluatedPoint, candidate_steps
from repro.explore.transforms import StructuralCost
from repro.faultinjection import build_environment
from repro.service.core import CampaignService
from repro.soc.banked import bank_of_zone
from repro.soc.config import IMPROVEMENT_FLAGS


# ----------------------------------------------------------------------
# transform library
# ----------------------------------------------------------------------
def test_library_keys_are_config_flags():
    assert set(TRANSFORM_LIBRARY) == set(IMPROVEMENT_FLAGS)


def test_transforms_for_zone_matches_patterns():
    keys = {t.key for t in transforms_for_zone("fmem/wbuf/data[0:3]")}
    assert "write_buffer_parity" in keys
    assert "coder_checker" not in keys


def test_transforms_for_zone_strips_bank_and_block_prefixes():
    plain = {t.key for t in transforms_for_zone("fmem/coder/out")}
    assert plain == {t.key for t in
                     transforms_for_zone("bank1/fmem/coder/out")}
    assert plain == {t.key for t in
                     transforms_for_zone("block:bank0/fmem/coder/out")}
    assert "coder_checker" in plain


def test_plan_only_flag_marks_software_mechanisms():
    assert TRANSFORM_LIBRARY["sw_startup_tests"].plan_only
    assert not TRANSFORM_LIBRARY["write_buffer_parity"].plan_only


# ----------------------------------------------------------------------
# design points
# ----------------------------------------------------------------------
def test_design_point_identity_is_the_set_of_applications():
    a = DesignPoint(banks=2, applied=(
        (1, "coder_checker"), (0, "write_buffer_parity")))
    b = DesignPoint(banks=2, applied=(
        (0, "write_buffer_parity"), (1, "coder_checker"),
        (1, "coder_checker")))
    assert a == b
    assert a.name == "baseline+b0:write_buffer_parity+b1:coder_checker"


def test_design_point_with_transform_and_bank_flags():
    point = DesignPoint(variant="small-baseline", banks=2) \
        .with_transform(1, "scrub_parity")
    assert point.applied == ((1, "scrub_parity"),)
    assert point.bank_flags() == [{}, {"scrub_parity": True}]
    assert point.transforms_on(1) == [TRANSFORM_LIBRARY["scrub_parity"]]
    assert point.transforms_on(0) == []


def test_design_point_rejects_bad_applications():
    with pytest.raises(ValueError):
        DesignPoint(banks=2, applied=((0, "not_a_transform"),))
    with pytest.raises(ValueError):
        DesignPoint(banks=2, applied=((2, "coder_checker"),))


def test_design_point_dict_round_trip():
    point = DesignPoint(variant="small-baseline", banks=2,
                        applied=((0, "address_in_ecc"),))
    assert DesignPoint.from_dict(point.to_dict()) == point


def test_structural_cost_of_circuit_vs_plan_only_transform():
    base = DesignPoint(variant="small-baseline", banks=2)
    parity = base.with_transform(0, "write_buffer_parity")
    software = base.with_transform(0, "sw_startup_tests")
    assert structural_cost(parity, base=base).scalar > 0
    assert structural_cost(software, base=base).scalar == 0
    assert structural_cost(base).scalar == 0


# ----------------------------------------------------------------------
# Pareto front
# ----------------------------------------------------------------------
def _ev(cost: int, sff: float) -> EvaluatedPoint:
    return EvaluatedPoint(
        point=DesignPoint(), claimed_sff=sff, claimed_dc=sff,
        cost=StructuralCost(gates=cost, flops=0, gate_delta=cost))


def test_pareto_front_prunes_dominated_points():
    front = ParetoFront()
    assert front.add(_ev(100, 0.95))
    assert front.add(_ev(50, 0.90))          # cheaper, lower SFF: kept
    assert not front.add(_ev(120, 0.94))     # dominated by (100, .95)
    assert front.add(_ev(40, 0.96))          # dominates both
    assert [p.cost.scalar for p in front.points()] == [40]


def test_pareto_front_rejects_exact_ties():
    front = ParetoFront()
    assert front.add(_ev(100, 0.95))
    assert not front.add(_ev(100, 0.95))
    assert len(front) == 1


def test_pareto_front_cheapest_meeting_walks_cost_ascending():
    front = ParetoFront()
    front.add(_ev(10, 0.90))
    front.add(_ev(60, 0.97))
    front.add(_ev(200, 0.995))
    assert front.cheapest_meeting(0.95).cost.scalar == 60
    assert front.cheapest_meeting(0.99).cost.scalar == 200
    assert front.cheapest_meeting(0.999) is None


# ----------------------------------------------------------------------
# candidate seeding
# ----------------------------------------------------------------------
def test_bank_of_zone():
    assert bank_of_zone("bank0/fmem/wbuf/data[0:3]") == 0
    assert bank_of_zone("block:bank1/fmem/coder") == 1
    assert bank_of_zone("po:bank1_rdata") == 1
    assert bank_of_zone("critical:hwdata[0]") is None


def test_candidate_steps_cover_the_library(small_banked_worksheet):
    steps = candidate_steps(small_banked_worksheet, banks=2)
    assert len(steps) == len(set(steps))
    assert set(steps) == {(b, key) for b in (0, 1)
                          for key in TRANSFORM_LIBRARY}
    # the head must be criticality-seeded: a real zone proposed it
    bank, key = steps[0]
    assert key in TRANSFORM_LIBRARY


@pytest.fixture(scope="module")
def small_banked_worksheet():
    return DesignPoint(variant="small-baseline",
                       banks=2).build().worksheet()


# ----------------------------------------------------------------------
# locality: run diff and warm hits of a one-bank mitigation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def bank1_mitigation(tmp_path_factory):
    """Base campaign, then the same design with write-buffer parity
    on bank 1 only, sharing one store."""
    service = CampaignService(
        str(tmp_path_factory.mktemp("explore_store")))
    base = DesignPoint(variant="small-baseline", banks=2)
    variant = base.with_transform(1, "write_buffer_parity")
    out_a = service.run_campaign(base.request())
    out_b = service.run_campaign(variant.request())
    assert out_a.exit_code == 0 and out_b.exit_code == 0
    return service, base, variant, out_a, out_b


def test_one_bank_mitigation_touches_only_that_bank(bank1_mitigation):
    _, base, variant, _, _ = bank1_mitigation
    env_a = build_environment(base.build(), quick=True)
    env_b = build_environment(variant.build(), quick=True)
    touched, untouched, shared = touched_zones(env_a, env_b)
    assert touched and untouched and shared
    # every invalidated cone lives in the mitigated bank
    assert all(bank_of_zone(z) == 1 for z in touched)
    # the other bank is provably warm
    assert any(bank_of_zone(z) == 0 for z in untouched)


def test_warm_hits_equal_untouched_cone_count(bank1_mitigation):
    from repro.store import FingerprintContext
    _, base, variant, _, out_b = bank1_mitigation
    env_a = build_environment(base.build(), quick=True)
    env_b = build_environment(variant.build(), quick=True)
    ctx_a = FingerprintContext.from_spec(env_a.spec())
    ctx_b = FingerprintContext.from_spec(env_b.spec())
    stored = {ctx_a.fault_fingerprint(f)
              for f in env_a.candidates().faults}
    unchanged = sum(
        1 for f in env_b.candidates().faults
        if ctx_b.fault_fingerprint(f) in stored)
    summary = out_b.summary_dict()
    assert summary["hits"] == unchanged
    assert summary["hits"] > 0
    assert summary["misses"] == \
        len(env_b.candidates().faults) - unchanged


def test_run_diff_names_only_mitigated_bank_zones(bank1_mitigation):
    from repro.reporting.rundiff import render_run_diff
    from repro.store import CampaignCache, diff_runs
    service, base, variant, out_a, out_b = bank1_mitigation
    with CampaignCache(service.root) as cache:
        diff = diff_runs(cache,
                         out_a.summary_dict()["run_id"],
                         out_b.summary_dict()["run_id"])
        text = render_run_diff(diff)
    env_a = build_environment(base.build(), quick=True)
    env_b = build_environment(variant.build(), quick=True)
    touched, _, _ = touched_zones(env_a, env_b)
    affected = set(diff.affected_zones())
    # outcome movement can only come from invalidated cones
    assert affected <= touched
    assert all(bank_of_zone(z) == 1 for z in affected)
    for zone in affected:
        assert zone in text
    # the parity registers themselves are new cones in the diff
    assert any("bank1/fmem/wbuf" in z for z in affected) or affected


# ----------------------------------------------------------------------
# the search, end to end (in-process evaluations)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_search(tmp_path_factory):
    service = CampaignService(
        str(tmp_path_factory.mktemp("search_store")))
    config = ExploreConfig(variant="small-baseline", banks=2,
                           target_sff=0.92, budget=4, probe_width=2,
                           use_queue=False)
    return service, explore(service, config)


def test_search_walks_toward_the_target(small_search):
    _, result = small_search
    assert result.evaluations[0].point.applied == ()
    assert len(result.evaluations) <= 4
    assert result.recommended is not None
    best = max(e.claimed_sff for e in result.evaluations)
    assert best > result.base.claimed_sff


def test_search_later_steps_are_served_warm(small_search):
    _, result = small_search
    assert result.base.hits == 0            # the seed is cold
    for ev in result.evaluations[1:]:
        assert ev.hits > 0                  # every step reuses cones
    assert result.incremental_hit_rate > result.hit_rate
    assert result.total_simulated < result.cold_faults


def test_search_verification_is_fully_warm_and_identical(small_search):
    _, result = small_search
    ver = result.verification
    assert ver is not None
    assert ver.misses == 0
    assert ver.simulated == 0
    assert ver.measured_dc == result.recommended.measured_dc
    assert ver.safe_fraction == result.recommended.safe_fraction


def test_frontier_variants_match_cold_cache_free_runs(
        small_search, tmp_path):
    """The incremental walk must not buy speed with accuracy: every
    frontier point's measured DC / safe fraction is bit-identical to
    a cold campaign that never consults the store."""
    _, result = small_search
    cold_service = CampaignService(str(tmp_path / "cold_store"))
    for ev in result.front.points():
        cold = cold_service.run_campaign(
            ev.point.request(use_cache=False))
        summary = cold.summary_dict()
        assert summary["measured_dc"] == ev.measured_dc
        assert summary["safe_fraction"] == ev.safe_fraction
        assert summary["hits"] == 0         # provably cold


def test_dossier_renders_all_sections(small_search):
    _, result = small_search
    text = render_explore_dossier(result)
    assert "EXPLORATION DOSSIER" in text
    assert "evaluation trace" in text
    assert "Pareto front" in text
    assert "recommendation" in text
    assert "incremental-campaign economics" in text
    assert result.recommended.point.name[:40] in text
