"""Tests for the dual-channel (1oo2, HFT=1) architecture."""

import pytest

from repro.iec61508 import SIL, max_sil
from repro.soc import SubsystemConfig
from repro.soc.dualchannel import DualChannelSubsystem, make_dual_plan
from repro.soc.subsystem import MemorySubsystem


@pytest.fixture(scope="module")
def dual():
    return DualChannelSubsystem(
        SubsystemConfig.small_baseline(name="dual_small"))


def run_ops(dual, sim, ops):
    for op in ops:
        sim.step(op)
    sim.step_eval(dual.idle())
    snapshot = {name: sim.output(name)
                for name in dual.circuit.outputs}
    sim.step_commit()
    return snapshot


def test_mission_behaviour_matches_single_channel(dual):
    single = MemorySubsystem(dual.cfg)
    ops = [dual.reset_op(), dual.reset_op(), dual.write(3, 0x5A),
           dual.idle(), dual.idle(), dual.read(3), dual.idle(),
           dual.idle()]
    sim_d = dual.simulator()
    sim_s = single.simulator()
    for op in ops:
        sim_d.step_eval(op)
        sim_s.step_eval(op)
        assert sim_d.output("hrdata") == sim_s.output("hrdata")
        assert sim_d.output("rvalid") == sim_s.output("rvalid")
        sim_d.step_commit()
        sim_s.step_commit()


def test_cross_alarm_silent_when_healthy(dual):
    sim = dual.simulator()
    snap = run_ops(dual, sim, [dual.reset_op(), dual.reset_op(),
                               dual.write(1, 0x42), dual.idle(),
                               dual.idle(), dual.read(1),
                               dual.idle(), dual.idle()])
    assert snap["alarm_cross"] == 0
    assert snap["hrdata"] == 0


@pytest.mark.parametrize("victim", [
    "cha/fmem/decoder/pipe_data[1]",
    "chb/fmem/decoder/pipe_data[1]",
])
def test_cross_alarm_catches_either_channel(dual, victim):
    """The baseline channel's silent pipe corruption becomes a
    detected failure under 1oo2 — whichever channel it hits."""
    sim = dual.simulator()
    for op in (dual.reset_op(), dual.reset_op(), dual.write(3, 0x5A),
               dual.idle(), dual.idle()):
        sim.step(op)
    sim.schedule_flop_flip(victim, cycle=sim.cycle + 2)
    snap = run_ops(dual, sim, [dual.read(3), dual.idle(),
                               dual.idle(), dual.idle()])
    assert snap["alarm_cross"] == 1


def test_common_cause_not_covered(dual):
    """Identical faults in both channels defeat the comparator — the
    1oo2 residual the FMEA's common-cause factors account for."""
    sim = dual.simulator()
    for op in (dual.reset_op(), dual.reset_op(), dual.write(3, 0x5A),
               dual.idle(), dual.idle()):
        sim.step(op)
    for channel in ("cha", "chb"):
        sim.schedule_flop_flip(f"{channel}/fmem/decoder/pipe_data[1]",
                               cycle=sim.cycle + 2)
    returned = None
    for op in (dual.read(3), dual.idle(), dual.idle(), dual.idle()):
        sim.step_eval(op)
        if sim.output("rvalid"):
            returned = sim.output("hrdata")
        cross = sim.output("alarm_cross")
        sim.step_commit()
    assert cross == 0                     # comparator blind
    assert returned is not None
    assert returned != 0x5A               # corrupted data delivered


def test_dual_plan_rebases_patterns(dual):
    plan = make_dual_plan(dual.cfg)
    patterns = [rule.pattern for rule in plan.coverage]
    assert any(p.startswith("cha/") for p in patterns)
    assert any(p.startswith("chb/") for p in patterns)
    # port-zone claims are not channel-prefixed
    assert all(not p.startswith(("cha/po:", "chb/po:"))
               for p in patterns)


def test_hft1_route_reaches_sil3(dual):
    """§2: 'With a HFT equal to one, the SFF should be greater than
    90%' — the dual baseline clears the HFT=1 bar comfortably."""
    totals = dual.worksheet().totals()
    assert totals.sff > 0.90
    granted = max_sil(totals.sff, hft=DualChannelSubsystem.hft)
    assert granted is not None and granted >= SIL.SIL3


def test_area_cost_roughly_doubles(dual):
    single = MemorySubsystem(dual.cfg)
    ratio = dual.circuit.gate_count() / single.circuit.gate_count()
    assert 1.9 < ratio < 2.4
    assert dual.circuit.memory_bits() == \
        2 * single.circuit.memory_bits()
