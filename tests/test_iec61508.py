"""Tests for the IEC 61508 norm model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iec61508 import (
    SIL,
    DcLevel,
    FailureRates,
    Target,
    architecture_table,
    clamp_claim,
    diagnostic_coverage,
    failure_modes_for,
    max_dc_claim,
    max_sil,
    permanent_modes,
    pfh_meets,
    required_sff,
    safe_failure_fraction,
    technique,
    techniques_for,
    transient_modes,
)
from repro.zones import ZoneKind


# ----------------------------------------------------------------------
# SIL architecture tables
# ----------------------------------------------------------------------
def test_paper_quoted_thresholds():
    # "With a HFT equal to zero, a SFF equal or greater than 99% is
    # required in order that the system ... can be granted with SIL3."
    assert max_sil(0.99, hft=0) is SIL.SIL3
    assert max_sil(0.9938, hft=0) is SIL.SIL3
    assert max_sil(0.95, hft=0) is SIL.SIL2          # the baseline design
    # "With a HFT equal to one, the SFF should be greater than 90%."
    assert max_sil(0.90, hft=1) is SIL.SIL3
    assert max_sil(0.89, hft=1) is SIL.SIL2


def test_type_b_low_sff_not_allowed_at_hft0():
    assert max_sil(0.5, hft=0, type_b=True) is None
    assert max_sil(0.5, hft=0, type_b=False) is SIL.SIL1


def test_required_sff():
    assert required_sff(SIL.SIL3, hft=0) == pytest.approx(0.99)
    assert required_sff(SIL.SIL3, hft=1) == pytest.approx(0.90)
    assert required_sff(SIL.SIL2, hft=0) == pytest.approx(0.90)


def test_required_sff_unreachable():
    with pytest.raises(ValueError):
        required_sff(SIL.SIL4, hft=0, type_b=True)


def test_architecture_table_shape():
    rows = architecture_table(type_b=True)
    assert len(rows) == 4
    assert rows[0][1][0] == "not allowed"
    assert rows[3][1][0] == "SIL3"


@given(st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2))
def test_max_sil_monotonic_in_hft(sff, hft):
    """More fault tolerance never lowers the claimable SIL."""
    low = max_sil(sff, hft)
    high = max_sil(sff, hft + 1)
    if low is not None:
        assert high is not None and high >= low


def test_invalid_inputs():
    with pytest.raises(ValueError):
        max_sil(1.5, 0)
    with pytest.raises(ValueError):
        max_sil(0.9, -1)


def test_pfh_targets():
    assert pfh_meets(SIL.SIL3, 5e-8)
    assert not pfh_meets(SIL.SIL3, 5e-7)


# ----------------------------------------------------------------------
# λ-algebra
# ----------------------------------------------------------------------
def test_dc_and_sff_formulas():
    rates = FailureRates(lambda_s=50, lambda_dd=45, lambda_du=5)
    assert rates.lambda_d == 50
    assert rates.dc == pytest.approx(0.90)
    assert rates.sff == pytest.approx(0.95)


def test_empty_rates_are_perfect():
    assert FailureRates().sff == 1.0
    assert FailureRates().dc == 1.0


def test_rate_addition_and_scaling():
    a = FailureRates(10, 20, 5)
    b = FailureRates(1, 2, 3)
    c = a + b
    assert c.lambda_s == 11 and c.lambda_dd == 22 and c.lambda_du == 8
    assert a.scaled(2).total == 2 * a.total


def test_split_by_s_factor_and_dc():
    rates = FailureRates.split(total=100, safe_fraction=0.4, dc=0.9)
    assert rates.lambda_s == pytest.approx(40)
    assert rates.lambda_dd == pytest.approx(54)
    assert rates.lambda_du == pytest.approx(6)
    assert rates.total == pytest.approx(100)


@given(st.floats(min_value=0.001, max_value=1000),
       st.floats(min_value=0, max_value=1),
       st.floats(min_value=0, max_value=1))
def test_split_conserves_total(total, s, dc):
    rates = FailureRates.split(total, s, dc)
    assert rates.total == pytest.approx(total, rel=1e-9)
    assert 0 <= rates.sff <= 1.0 + 1e-9


def test_helper_functions():
    assert diagnostic_coverage(90, 10) == pytest.approx(0.9)
    assert safe_failure_fraction(50, 45, 5) == pytest.approx(0.95)


# ----------------------------------------------------------------------
# techniques catalog
# ----------------------------------------------------------------------
def test_hamming_is_high_coverage():
    # §2: "RAM monitoring with Hamming code or ECCs or double RAMs ...
    # are the ones with the highest value"
    assert technique("ram_ecc_hamming").max_dc is DcLevel.HIGH
    assert technique("ram_double_comparison").max_dc is DcLevel.HIGH
    assert max_dc_claim("ram_ecc_hamming") == pytest.approx(0.99)


def test_parity_is_low_coverage():
    assert technique("ram_parity").max_dc is DcLevel.LOW


def test_clamp_claim():
    assert clamp_claim("ram_parity", 0.95) == pytest.approx(0.60)
    assert clamp_claim("ram_ecc_hamming", 0.95) == pytest.approx(0.95)


def test_techniques_for_target():
    vm = techniques_for(Target.VARIABLE_MEMORY)
    assert any(t.key == "ram_ecc_hamming" for t in vm)
    assert all(t.target is Target.VARIABLE_MEMORY for t in vm)


def test_unknown_technique():
    with pytest.raises(KeyError):
        technique("does_not_exist")


# ----------------------------------------------------------------------
# failure-mode catalog
# ----------------------------------------------------------------------
def test_variable_memory_modes_match_paper():
    names = {fm.name for fm in failure_modes_for(ZoneKind.MEMORY)}
    # §2: DC fault model, dynamic cross-over, no/wrong/multiple
    # addressing, change of information caused by soft-errors
    assert names == {"dc_fault", "dynamic_crossover", "addressing",
                     "soft_error"}


def test_register_modes_include_wrong_coding():
    names = {fm.name for fm in failure_modes_for(ZoneKind.REGISTER)}
    assert "wrong_coding" in names and "bit_flip" in names


def test_persistence_split():
    trans = transient_modes(ZoneKind.MEMORY)
    perm = permanent_modes(ZoneKind.MEMORY)
    assert {fm.name for fm in trans} == {"soft_error"}
    assert len(perm) == 3
