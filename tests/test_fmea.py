"""Tests for the FMEA spreadsheet engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fmea import (
    DiagnosticClaim,
    DiagnosticPlan,
    FitModel,
    FmeaEntry,
    FmeaWorksheet,
    FrequencyClass,
    SDFactors,
    build_worksheet,
    combine_coverage,
    critical_zones,
    criticality_report,
    full_report,
    rank_zones,
    stability_report,
    summary_report,
)
from repro.hdl import Module
from repro.iec61508 import SIL, PU_BIT_FLIP, PU_DC_FAULT
from repro.zones import SensibleZone, ZoneKind, extract_zones


def make_entry(zone="z", fit=100.0, s=0.4, claims=(), kind=None,
               mode=PU_BIT_FLIP, freq=FrequencyClass.F1):
    return FmeaEntry(
        zone=zone, zone_kind=kind or ZoneKind.REGISTER,
        failure_mode=mode, raw_fit=fit,
        factors=SDFactors(architectural=s), frequency=freq,
        claims=list(claims))


# ----------------------------------------------------------------------
# entries
# ----------------------------------------------------------------------
def test_entry_rates_split():
    entry = make_entry(fit=100, s=0.4,
                       claims=[DiagnosticClaim("ram_ecc_hamming", 0.99)])
    rates = entry.rates()
    assert rates.lambda_s == pytest.approx(40)
    assert rates.lambda_dd == pytest.approx(60 * 0.99)
    assert rates.lambda_du == pytest.approx(60 * 0.01)


def test_claim_clamped_to_norm_maximum():
    entry = make_entry(claims=[DiagnosticClaim("ram_parity", 0.95)])
    assert entry.ddf == pytest.approx(0.60)  # parity caps at low (60%)


def test_combine_coverage_union():
    claims = [DiagnosticClaim("ram_ecc_hamming", 0.90),
              DiagnosticClaim("ram_test_walkpath", 0.50)]
    assert combine_coverage(claims) == pytest.approx(1 - 0.1 * 0.5)


def test_hw_sw_ddf_split():
    entry = make_entry(claims=[
        DiagnosticClaim("ram_ecc_hamming", 0.99),       # HW
        DiagnosticClaim("ram_test_checkerboard", 0.60),  # SW
    ])
    assert entry.ddf_hw == pytest.approx(0.99)
    assert entry.ddf_sw == pytest.approx(0.60)
    assert entry.ddf > entry.ddf_hw


def test_frequency_class_reduces_dangerous_fraction():
    busy = make_entry(freq=FrequencyClass.F1)
    idle = make_entry(freq=FrequencyClass.F4)
    assert idle.safe_fraction > busy.safe_fraction
    assert idle.rates().lambda_du < busy.rates().lambda_du


@given(st.floats(min_value=0, max_value=1),
       st.floats(min_value=0, max_value=1))
def test_safe_fraction_bounds(s_arch, exposure_s):
    factors = SDFactors(architectural=s_arch,
                        applicational=exposure_s,
                        use_applicational=True)
    for freq in FrequencyClass:
        sf = factors.effective_safe_fraction(freq)
        assert 0.0 <= sf <= 1.0


# ----------------------------------------------------------------------
# worksheet aggregation
# ----------------------------------------------------------------------
def test_worksheet_totals_and_sil():
    sheet = FmeaWorksheet("t")
    # 1000 FIT of well-covered memory, 10 FIT of uncovered logic
    sheet.add(make_entry("mem", fit=1000, s=0.2,
                         claims=[DiagnosticClaim("ram_ecc_hamming", 0.99)],
                         kind=ZoneKind.MEMORY))
    sheet.add(make_entry("logic", fit=10, s=0.4))
    totals = sheet.totals()
    assert 0.9 < totals.sff < 1.0
    assert sheet.sil(hft=0) in (SIL.SIL2, SIL.SIL3)


def test_worksheet_row_lookup_and_measurement():
    sheet = FmeaWorksheet()
    sheet.add(make_entry("z1", mode=PU_BIT_FLIP))
    sheet.record_measurement("z1", "bit_flip", measured_ddf=0.42)
    entry = sheet.row("z1", "bit_flip")
    assert entry.measured_ddf == pytest.approx(0.42)
    assert entry.validation_gap() == pytest.approx(abs(0.0 - 0.42))
    assert sheet.worst_validation_gap() == pytest.approx(0.42)
    with pytest.raises(KeyError):
        sheet.row("z1", "nonexistent")


def test_worksheet_csv_export():
    sheet = FmeaWorksheet()
    sheet.add(make_entry("z1"))
    sheet.add(make_entry("z2", mode=PU_DC_FAULT))
    csv_text = sheet.to_csv()
    lines = csv_text.strip().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("zone,kind,failure_mode")
    assert "z1" in lines[1]


def test_totals_by_persistence():
    sheet = FmeaWorksheet()
    sheet.add(make_entry("a", fit=10, mode=PU_BIT_FLIP))
    sheet.add(make_entry("a", fit=20, mode=PU_DC_FAULT))
    split = sheet.totals_by_persistence()
    assert split["transient"].total == pytest.approx(10)
    assert split["permanent"].total == pytest.approx(20)


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
def _toy_zone_set():
    m = Module("toy")
    a = m.input("a", 8)
    wdata = m.input("wdata", 8)
    we = m.input("we")
    q = m.reg("ctrl/state", a)
    rdata = m.memory("ram", 16, 8, a[0:4], wdata, we)
    m.output("y", q ^ rdata)
    return extract_zones(m.build())


def test_build_worksheet_covers_all_modes():
    zs = _toy_zone_set()
    sheet = build_worksheet(zs)
    # memory zones get 4 IEC modes, register zones get 4
    mem_rows = [e for e in sheet if e.zone_kind is ZoneKind.MEMORY]
    assert len(mem_rows) == 4
    assert {e.failure_mode.name for e in mem_rows} == {
        "dc_fault", "dynamic_crossover", "addressing", "soft_error"}


def test_build_worksheet_fit_conservation():
    zs = _toy_zone_set()
    fit = FitModel()
    sheet = build_worksheet(zs, fit_model=fit)
    for zone in zs.zones:
        rows = sheet.rows_for_zone(zone.name)
        if not rows:
            continue
        t_fit, p_fit = fit.zone_fit(zone)
        assert sum(e.raw_fit for e in rows) == pytest.approx(t_fit + p_fit)


def test_plan_pattern_coverage():
    zs = _toy_zone_set()
    plan = DiagnosticPlan()
    plan.cover("ram*", "ram_ecc_hamming", 0.99)
    plan.cover("ctrl/*", "cpu_self_test_sw", 0.55,
               persistence="permanent")
    sheet = build_worksheet(zs, plan=plan)
    mem_row = next(e for e in sheet if e.zone_kind is ZoneKind.MEMORY)
    assert mem_row.ddf == pytest.approx(0.99)
    reg_perm = sheet.row("ctrl/state", "dc_fault")
    assert reg_perm.ddf > 0
    reg_trans = sheet.row("ctrl/state", "bit_flip")
    assert reg_trans.ddf == 0  # rule was permanent-only


def test_plan_factor_rules():
    zs = _toy_zone_set()
    plan = DiagnosticPlan()
    plan.set_factors("ctrl/*", frequency=FrequencyClass.F4)
    sheet = build_worksheet(zs, plan=plan)
    assert sheet.row("ctrl/state", "bit_flip").frequency is \
        FrequencyClass.F4


def test_coverage_improves_sff():
    zs = _toy_zone_set()
    bare = build_worksheet(zs)
    plan = DiagnosticPlan().cover("*", "ram_ecc_hamming", 0.99)
    covered = build_worksheet(zs, plan=plan)
    assert covered.sff > bare.sff


# ----------------------------------------------------------------------
# ranking
# ----------------------------------------------------------------------
def test_ranking_orders_by_du():
    sheet = FmeaWorksheet()
    sheet.add(make_entry("covered", fit=1000,
                         claims=[DiagnosticClaim("ram_ecc_hamming", 0.99)]))
    sheet.add(make_entry("naked", fit=100))
    rows = rank_zones(sheet)
    assert rows[0].zone == "naked"   # uncovered zone dominates λDU
    assert rows[0].du_share > 0.5
    assert rows[-1].cumulative == pytest.approx(1.0)


def test_critical_zones_threshold():
    sheet = FmeaWorksheet()
    sheet.add(make_entry("big", fit=1000))
    sheet.add(make_entry("tiny", fit=0.01))
    crit = critical_zones(sheet, du_share_threshold=0.05)
    assert crit == ["big"]


# ----------------------------------------------------------------------
# sensitivity
# ----------------------------------------------------------------------
def _two_zone_sheet():
    sheet = FmeaWorksheet("sens")
    sheet.add(make_entry("mem", fit=1000, s=0.2,
                         claims=[DiagnosticClaim("ram_ecc_hamming", 0.99)],
                         kind=ZoneKind.MEMORY))
    sheet.add(make_entry("logic", fit=20, s=0.4,
                         claims=[DiagnosticClaim("cpu_self_test_sw", 0.6)]))
    return sheet


def test_sensitivity_spans_produce_results():
    report = stability_report(_two_zone_sheet())
    assert len(report.results) >= 6
    assert report.nominal_sff > 0.9
    # every span keeps SFF within [0, 1]
    assert all(0 <= r.sff <= 1 for r in report.results)


def test_sensitivity_detects_instability():
    # an uncovered high-FIT zone makes SFF fragile vs fault models
    sheet = FmeaWorksheet()
    sheet.add(make_entry("good", fit=100, s=0.2,
                         claims=[DiagnosticClaim("ram_ecc_hamming", 0.99)],
                         kind=ZoneKind.MEMORY))
    sheet.add(make_entry("bad", fit=30, s=0.1, mode=PU_DC_FAULT))
    report = stability_report(sheet)
    assert not report.stable(tolerance=0.005)


def test_sensitivity_well_covered_sheet_is_stable():
    sheet = FmeaWorksheet()
    for name in ("a", "b"):
        sheet.add(make_entry(name, fit=500, s=0.2,
                             claims=[DiagnosticClaim("ram_ecc_hamming",
                                                     0.99)],
                             kind=ZoneKind.MEMORY))
    report = stability_report(sheet)
    assert report.stable(tolerance=0.01)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def test_reports_render():
    sheet = _two_zone_sheet()
    text = full_report(sheet)
    assert "FMEA summary" in text
    assert "critical sensible zones" in text
    assert "SFF" in summary_report(sheet)
    assert "mem" in criticality_report(sheet) or \
        "logic" in criticality_report(sheet)
