"""Unit tests for the bit-parallel simulator and its fault overlays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import (
    BRIDGE_AND,
    BRIDGE_DOMINANT,
    BRIDGE_OR,
    Module,
    NetlistError,
    Simulator,
    library,
)


def xor_reg_circuit(width=4):
    m = Module("t")
    a = m.input("a", width)
    b = m.input("b", width)
    q = m.reg("q", a ^ b)
    m.output("y", q)
    return m.build()


# ----------------------------------------------------------------------
# machine semantics
# ----------------------------------------------------------------------
def test_golden_machine_matches_single():
    circ = xor_reg_circuit()
    s1 = Simulator(circ, machines=1)
    s8 = Simulator(circ, machines=8)
    for a, b in [(1, 2), (7, 7), (15, 0)]:
        s1.step({"a": a, "b": b})
        s8.step({"a": a, "b": b})
        s1.step_eval({"a": 0, "b": 0})
        s8.step_eval({"a": 0, "b": 0})
        assert s1.output("y") == s8.output("y", machine=0)
        for k in range(8):
            assert s8.output("y", machine=k) == s1.output("y")
        s1.step_commit()
        s8.step_commit()


def test_input_lane_override():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=2)
    sim.set_input("a", 0b0011)
    sim.set_input("b", 0)
    sim.set_input_lane("a", 1, 0b0101)
    sim.eval_comb()
    sim.clock_edge()
    sim.eval_comb()
    assert sim.output("y", machine=0) == 0b0011
    assert sim.output("y", machine=1) == 0b0101


def test_mismatch_mask_excludes_golden():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=4)
    sim.stick_net(circ.outputs["y"][0], 1, machines=0b1010)
    sim.step_eval({"a": 0, "b": 0})
    mask = sim.mismatch_mask(circ.outputs["y"])
    assert mask == 0b1010


# ----------------------------------------------------------------------
# fault overlays
# ----------------------------------------------------------------------
def test_stuck_net_per_machine():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=3)
    q0 = circ.find_net("q[0]")
    sim.stick_net(q0, 1, machines=1 << 2)
    sim.step({"a": 0, "b": 0})
    sim.step_eval({"a": 0, "b": 0})
    assert sim.output("y", machine=0) == 0
    assert sim.output("y", machine=2) == 1


def test_stuck_overrides_both_polarities():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=3)
    net = circ.find_net("q[1]")
    sim.stick_net(net, 0, machines=1 << 1)
    sim.stick_net(net, 1, machines=1 << 2)
    sim.step({"a": 0b10, "b": 0})
    sim.step_eval({"a": 0, "b": 0})
    assert sim.output("y", machine=0) == 0b10
    assert sim.output("y", machine=1) == 0b00
    assert sim.output("y", machine=2) == 0b10


def test_flop_flip_is_transient():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=2)
    sim.schedule_flop_flip("q[0]", cycle=2, machines=1 << 1)
    values = []
    for cycle in range(4):
        sim.step_eval({"a": 0, "b": 0})
        values.append((sim.output("y", 0), sim.output("y", 1)))
        sim.step_commit()
    assert values[2] == (0, 1)      # flipped at cycle 2
    assert values[3] == (0, 0)      # reloaded from clean datapath


def test_net_glitch_single_cycle():
    m = Module("t")
    a = m.input("a", 1)
    y = (a ^ a)  # folds to const0... use real gate instead
    y = a & m.input("b", 1)
    q = m.reg("q", y)
    m.output("q", q)
    circ = m.build()
    sim = Simulator(circ, machines=2)
    target = circ.gates[-1].out
    sim.schedule_net_glitch(target, cycle=1, machines=1 << 1)
    sim.step({"a": 0, "b": 0})          # cycle 0
    sim.step({"a": 0, "b": 0})          # cycle 1: glitch captured
    sim.step_eval({"a": 0, "b": 0})
    assert sim.flop_value("q", machine=1) == 1
    assert sim.flop_value("q", machine=0) == 0


def test_bridge_modes():
    m = Module("t")
    a = m.input("a", 1)
    b = m.input("b", 1)
    ga = a & m.const(1, 1)  # folds: use explicit gates via xor const0
    ga = a ^ m.input("pad1", 1)
    gb = b ^ m.input("pad2", 1)
    m.output("ya", ga)
    m.output("yb", gb)
    circ = m.build()
    for mode, expected in [(BRIDGE_DOMINANT, 1), (BRIDGE_AND, 0),
                           (BRIDGE_OR, 1)]:
        sim = Simulator(circ, machines=2)
        sim.add_bridge(circ.outputs["ya"][0], circ.outputs["yb"][0],
                       mode=mode, machines=1 << 1)
        sim.step_eval({"a": 1, "b": 0, "pad1": 0, "pad2": 0})
        assert sim.output("yb", machine=0) == 0
        assert sim.output("yb", machine=1) == expected


def test_clear_faults():
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=2)
    sim.stick_net(circ.outputs["y"][0], 1, machines=2)
    sim.clear_faults()
    sim.step_eval({"a": 0, "b": 0})
    assert sim.mismatch_mask(circ.outputs["y"]) == 0


# ----------------------------------------------------------------------
# memory engine
# ----------------------------------------------------------------------
def mem_circuit(depth=8, width=4):
    m = Module("t")
    addr = m.input("addr", 3)
    wd = m.input("wd", width)
    we = m.input("we", 1)
    rd = m.memory("ram", depth, width, addr, wd, we)
    m.output("rd", rd)
    return m.build()


def test_memory_read_before_write():
    circ = mem_circuit()
    sim = Simulator(circ)
    sim.load_mem("ram", [0xA] + [0] * 7)
    # write 0x5 at address 0 while reading it: rdata gets the old value
    sim.step({"addr": 0, "wd": 0x5, "we": 1})
    sim.step_eval({"addr": 0, "wd": 0, "we": 0})
    assert sim.output("rd") == 0xA
    sim.step_commit()
    sim.step_eval({"addr": 0, "wd": 0, "we": 0})
    sim.step_commit()
    sim.step_eval({"addr": 0, "wd": 0, "we": 0})
    assert sim.output("rd") == 0x5


def test_memory_divergent_addresses():
    """Machines reading different addresses (address-line fault)."""
    circ = mem_circuit()
    sim = Simulator(circ, machines=2)
    sim.load_mem("ram", [0x1, 0x2] + [0] * 6)
    addr0 = circ.inputs["addr"][0]
    sim.stick_net(addr0, 0, machines=1 << 1)  # machine 1 reads addr&~1
    sim.step({"addr": 1, "wd": 0, "we": 0})
    sim.step_eval({"addr": 1, "wd": 0, "we": 0})
    assert sim.output("rd", machine=0) == 0x2
    assert sim.output("rd", machine=1) == 0x1


def test_memory_divergent_write():
    circ = mem_circuit()
    sim = Simulator(circ, machines=2)
    we = circ.inputs["we"][0]
    sim.stick_net(we, 0, machines=1 << 1)  # machine 1 never writes
    sim.step({"addr": 3, "wd": 0xF, "we": 1})
    assert sim.read_mem_word("ram", 3, machine=0) == 0xF
    assert sim.read_mem_word("ram", 3, machine=1) == 0
    assert sim.mem_word_mismatch("ram", 3) == 0b10


def test_memory_cell_stuck():
    circ = mem_circuit()
    sim = Simulator(circ, machines=2)
    sim.set_mem_cell_stuck("ram", 2, 0, value=1, machines=1 << 1)
    sim.step({"addr": 2, "wd": 0, "we": 1})
    sim.step({"addr": 2, "wd": 0, "we": 0})
    sim.step_eval({"addr": 2, "wd": 0, "we": 0})
    assert sim.output("rd", machine=0) == 0
    assert sim.output("rd", machine=1) == 1


def test_memory_soft_error_flip():
    circ = mem_circuit()
    sim = Simulator(circ)
    sim.load_mem("ram", [0] * 8)
    sim.schedule_mem_flip("ram", 4, 2, cycle=1)
    sim.step({"addr": 4, "wd": 0, "we": 0})  # cycle 0
    sim.step({"addr": 4, "wd": 0, "we": 0})  # cycle 1: flip applied
    assert sim.read_mem_word("ram", 4) == 0b100


def test_memory_coupling_fault():
    circ = mem_circuit()
    sim = Simulator(circ, machines=2)
    sim.add_mem_coupling("ram", aggressor=(1, 0), victim=(2, 3),
                         machines=1 << 1)
    sim.step({"addr": 1, "wd": 1, "we": 1})  # aggressor bit 0 rises
    assert sim.read_mem_word("ram", 2, machine=1) == 0b1000
    assert sim.read_mem_word("ram", 2, machine=0) == 0


# ----------------------------------------------------------------------
# toggle collection
# ----------------------------------------------------------------------
def test_toggle_collection_golden():
    circ = xor_reg_circuit(2)
    sim = Simulator(circ, collect_toggles=True)
    sim.step({"a": 0, "b": 0})
    cov_before = sim.toggle_coverage()
    sim.step({"a": 3, "b": 0})
    sim.step({"a": 0, "b": 3})
    sim.step({"a": 0, "b": 0})
    sim.step({"a": 0, "b": 0})
    assert sim.toggle_coverage() > cov_before
    assert sim.toggle_coverage() == 1.0
    assert sim.untoggled_nets() == []


def test_toggle_any_machine_mode():
    circ = xor_reg_circuit(1)
    sim = Simulator(circ, machines=2, collect_toggles=True,
                    toggle_any_machine=True)
    q = circ.find_net("q")
    sim.stick_net(q, 1, machines=1 << 1)  # only the faulty machine sees 1
    sim.step({"a": 0, "b": 0})
    sim.step({"a": 0, "b": 0})
    toggled, total = sim.toggle_report()
    # q toggles thanks to the faulty machine
    assert sim._seen0[q] and sim._seen1[q]


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
def test_unknown_names_raise():
    circ = xor_reg_circuit()
    sim = Simulator(circ)
    with pytest.raises(NetlistError):
        sim.set_input("nope", 1)
    with pytest.raises(NetlistError):
        sim.peek("missing_net")
    with pytest.raises(NetlistError):
        sim.schedule_flop_flip("missing_flop", cycle=0)


def test_machine_count_validation():
    with pytest.raises(ValueError):
        Simulator(xor_reg_circuit(), machines=0)


@given(st.integers(0, 15), st.integers(0, 15), st.integers(1, 8))
@settings(max_examples=25)
def test_parallel_machines_independent(a, b, machines):
    """Untouched machines always agree with machine 0."""
    circ = xor_reg_circuit()
    sim = Simulator(circ, machines=machines)
    sim.step({"a": a, "b": b})
    sim.step_eval({"a": 0, "b": 0})
    for k in range(machines):
        assert sim.output("y", machine=k) == a ^ b


def test_counter_rollover():
    m = Module("t")
    cnt = library.counter(m, "c", 3)
    m.output("c", cnt)
    sim = Simulator(m.build())
    seen = []
    for _ in range(10):
        sim.step_eval({})
        seen.append(sim.output("c"))
        sim.step_commit()
    assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
