"""Tests for the structural component generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Module, NetlistError, Simulator, library


def build_and_sim(build):
    m = Module("t")
    build(m)
    return Simulator(m.build())


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
@settings(max_examples=40)
def test_ripple_add(a, b, cin):
    m = Module("t")
    va, vb = m.input("a", 8), m.input("b", 8)
    vcin = m.input("cin", 1)
    s, cout = library.ripple_add(m, va, vb, vcin)
    m.output("s", s)
    m.output("cout", cout)
    sim = Simulator(m.build())
    sim.step_eval({"a": a, "b": b, "cin": cin})
    total = a + b + cin
    assert sim.output("s") == total & 0xFF
    assert sim.output("cout") == total >> 8


@given(st.integers(0, 255))
@settings(max_examples=30)
def test_increment(a):
    m = Module("t")
    va = m.input("a", 8)
    s, carry = library.increment(m, va)
    m.output("s", s)
    m.output("c", carry)
    sim = Simulator(m.build())
    sim.step_eval({"a": a})
    assert sim.output("s") == (a + 1) & 0xFF
    assert sim.output("c") == (a + 1) >> 8


def test_ripple_add_width_mismatch():
    m = Module("t")
    with pytest.raises(NetlistError):
        library.ripple_add(m, m.input("a", 4), m.input("b", 5))


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
def test_counter_wrap_at():
    m = Module("t")
    cnt = library.counter(m, "c", 3, wrap_at=5)
    m.output("c", cnt)
    sim = Simulator(m.build())
    seen = []
    for _ in range(8):
        sim.step_eval({})
        seen.append(sim.output("c"))
        sim.step_commit()
    assert seen == [0, 1, 2, 3, 4, 0, 1, 2]


def test_counter_with_enable():
    m = Module("t")
    en = m.input("en", 1)
    cnt = library.counter(m, "c", 4, en=en)
    m.output("c", cnt)
    sim = Simulator(m.build())
    sim.step({"en": 1})
    sim.step({"en": 0})
    sim.step({"en": 0})
    sim.step_eval({"en": 1})
    assert sim.output("c") == 1  # held while disabled


# ----------------------------------------------------------------------
# decode / compare / select
# ----------------------------------------------------------------------
@given(st.integers(0, 15), st.integers(0, 15))
@settings(max_examples=30)
def test_equals_const(v, const):
    m = Module("t")
    vec = m.input("v", 4)
    m.output("eq", library.equals_const(m, vec, const))
    sim = Simulator(m.build())
    sim.step_eval({"v": v})
    assert sim.output("eq") == int(v == const)


@given(st.integers(0, 7))
@settings(max_examples=20)
def test_decoder_onehot(sel):
    m = Module("t")
    vs = m.input("s", 3)
    m.output("hot", library.decoder(m, vs))
    sim = Simulator(m.build())
    sim.step_eval({"s": sel})
    assert sim.output("hot") == 1 << sel


@given(st.integers(0, 3), st.lists(st.integers(0, 255), min_size=4,
                                   max_size=4))
@settings(max_examples=25)
def test_mux_many(sel, options):
    m = Module("t")
    vs = m.input("s", 2)
    opts = [m.const(v, 8) for v in options]
    m.output("y", library.mux_many(m, vs, opts))
    sim = Simulator(m.build())
    sim.step_eval({"s": sel})
    assert sim.output("y") == options[sel]


def test_mux_many_non_power_of_two():
    m = Module("t")
    vs = m.input("s", 2)
    opts = [m.const(v, 4) for v in (1, 2, 3)]
    m.output("y", library.mux_many(m, vs, opts))
    sim = Simulator(m.build())
    for sel, expected in [(0, 1), (1, 2), (2, 3)]:
        sim.step_eval({"s": sel})
        assert sim.output("y") == expected


def test_onehot_mux():
    m = Module("t")
    sels = m.input("sel", 3)
    opts = [m.const(v, 4) for v in (0xA, 0xB, 0xC)]
    m.output("y", library.onehot_mux(
        m, [sels[i] for i in range(3)], opts))
    sim = Simulator(m.build())
    sim.step_eval({"sel": 0b010})
    assert sim.output("y") == 0xB


def test_priority_encoder():
    m = Module("t")
    req = m.input("req", 4)
    idx, valid = library.priority_encoder(m, req)
    m.output("idx", idx)
    m.output("valid", valid)
    sim = Simulator(m.build())
    for req_v, expect_idx, expect_valid in [
            (0b0000, 0, 0), (0b0001, 0, 1), (0b0100, 2, 1),
            (0b0110, 1, 1), (0b1111, 0, 1)]:
        sim.step_eval({"req": req_v})
        assert sim.output("valid") == expect_valid
        if expect_valid:
            assert sim.output("idx") == expect_idx


@given(st.integers(0, 15), st.integers(0, 15))
@settings(max_examples=30)
def test_less_than_const(v, const):
    m = Module("t")
    vec = m.input("v", 4)
    m.output("lt", library.less_than_const(m, vec, const))
    sim = Simulator(m.build())
    sim.step_eval({"v": v})
    assert sim.output("lt") == int(v < const)


def test_register_chain_depth():
    m = Module("t")
    d = m.input("d", 2)
    out = library.register_chain(m, "pipe", d, stages=3)
    m.output("y", out)
    circ = m.build()
    assert circ.flop_count() == 6
    sim = Simulator(circ)
    sim.step({"d": 0b11})
    sim.step({"d": 0})
    sim.step({"d": 0})
    sim.step_eval({"d": 0})
    assert sim.output("y") == 0b11  # 3-cycle latency
