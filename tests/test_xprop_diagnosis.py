"""Tests for X-propagation reset coverage and the fault dictionary."""

import pytest

from repro.faultinjection import (
    FaultDictionary,
    build_environment,
    signature_of,
)
from repro.hdl import Module, XSimulator, reset_coverage
from repro.soc import MemorySubsystem, SubsystemConfig


# ----------------------------------------------------------------------
# 3-valued simulation basics
# ----------------------------------------------------------------------
def test_x_blocks_through_and_or():
    m = Module("t")
    a = m.input("a", 1)
    q = m.declare_reg("u", 1)          # never reset: starts X
    m.connect_reg(q, q)
    m.output("and0", q & a)
    m.output("or1", q | ~a)
    circ = m.build()
    sim = XSimulator(circ)
    sim.step({"a": 0})
    # X & 0 = 0 (known), X | 1 = 1 (known)
    assert sim.values[circ.outputs["and0"][0]] == 0
    assert sim.values[circ.outputs["or1"][0]] == 1
    sim.step({"a": 1})
    # X & 1 = X, X | 0 = X
    assert sim.values[circ.outputs["and0"][0]] is None
    assert sim.values[circ.outputs["or1"][0]] is None


def test_reset_clears_reset_flops_only():
    m = Module("t")
    d = m.input("d", 1)
    en = m.input("en")
    rst = m.input("rst")
    with_rst = m.reg("ctrl", d, rst=rst, init=1)
    held = m.reg("data", d, en=en)   # holds its X while disabled
    m.output("y", with_rst & held)
    circ = m.build()
    report = reset_coverage(circ, [{"d": 0, "en": 0, "rst": 1}] * 2)
    assert "data" in report.unknown_after_reset
    assert "ctrl" not in report.unknown_after_reset


def test_x_exposed_at_output_detected():
    m = Module("t")
    rst = m.input("rst")
    u = m.declare_reg("u", 1)
    m.connect_reg(u, u)                 # uninitialized, held forever
    m.output("y", u)
    _ = rst
    circ = m.build()
    report = reset_coverage(circ, [{"rst": 1}] * 2, [{"rst": 0}] * 2)
    assert not report.clean
    assert report.x_reaching_outputs == ["y"]


def test_written_before_use_is_clean():
    m = Module("t")
    d = m.input("d", 2)
    en = m.input("en")
    rst = m.input("rst")
    valid = m.reg("valid", en, rst=rst)
    data = m.reg("data", d, en=en)      # no reset, gated by valid
    m.output("y", data & valid.repeat(2))
    circ = m.build()
    report = reset_coverage(
        circ, [{"d": 0, "en": 0, "rst": 1}] * 2,
        [{"d": 3, "en": 1, "rst": 0}, {"d": 3, "en": 0, "rst": 0}])
    assert not report.fully_initialized   # 'data' starts X
    assert report.clean                   # but X never escapes


def test_subsystem_reset_is_x_clean():
    """The §6 design's sign-off: un-reset datapath registers never
    expose X at an output."""
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    reset = [sub.reset_op() for _ in range(3)]
    check = [sub.write(2, 0x11), sub.idle(), sub.idle(),
             sub.read(2), sub.idle(), sub.idle(), sub.idle()]
    report = reset_coverage(sub.circuit, reset, check)
    assert not report.fully_initialized   # datapath regs are X...
    assert report.clean                   # ...and it doesn't matter


def test_mux_x_select_pessimism():
    m = Module("t")
    a = m.input("a", 1)
    u = m.declare_reg("u", 1)
    m.connect_reg(u, u)
    m.output("same", m.mux(u, a, a))     # folded: both arms same net
    b = m.input("b", 1)
    m.output("diff", m.mux(u, a, b))
    circ = m.build()
    sim = XSimulator(circ)
    sim.step({"a": 1, "b": 0})
    assert sim.values[circ.outputs["same"][0]] == 1   # arms agree
    assert sim.values[circ.outputs["diff"][0]] is None


# ----------------------------------------------------------------------
# fault dictionary
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dictionary():
    sub = MemorySubsystem(SubsystemConfig.small_improved())
    env = build_environment(sub, quick=True)
    campaign = env.manager().run(env.candidates())
    return campaign, FaultDictionary.build(campaign)


def test_signature_canonicalization():
    effects = {"alarm_ce": 9, "hrdata": 7}
    assert signature_of(effects) == ("alarm_ce", "hrdata")
    assert signature_of(effects, with_latency=True) == \
        ("hrdata", "alarm_ce")


def test_dictionary_statistics(dictionary):
    _, d = dictionary
    assert d.distinct_signatures > 10
    assert 0.0 < d.resolution() <= 1.0
    assert d.ambiguity() >= 1.0
    assert "fault dictionary" in d.summary()


def test_diagnose_ranks_true_zone_highly(dictionary):
    campaign, d = dictionary
    hits = 0
    total = 0
    for res in campaign.results:
        if not res.effects or res.fault.zone is None:
            continue
        total += 1
        candidates = d.diagnose(res.effects, top=5)
        if any(c.zone == res.fault.zone for c in candidates):
            hits += 1
    # the true zone appears among the top candidates most of the time
    assert total > 20
    assert hits / total > 0.75


def test_diagnose_unknown_signature_falls_back(dictionary):
    _, d = dictionary
    candidates = d.diagnose({"alarm_ce": 3})
    # subset matching still produces candidates
    assert candidates
    confidences = [c.confidence for c in candidates]
    assert confidences == sorted(confidences, reverse=True)


def test_diagnose_empty_effects(dictionary):
    _, d = dictionary
    # an empty picture matches everything — candidates exist but carry
    # little confidence
    candidates = d.diagnose({})
    assert isinstance(candidates, list)
