"""Tests for the structural Verilog writer/parser."""

import pytest

from repro.hdl import (
    Module,
    NetlistError,
    Simulator,
    library,
    parse_verilog,
    roundtrip,
    write_verilog,
)
from repro.soc import MemorySubsystem, SubsystemConfig


def sample_circuit():
    m = Module("dut")
    a = m.input("a", 4)
    b = m.input("b", 4)
    en = m.input("en")
    rst = m.input("rst")
    with m.scope("alu"):
        s, cout = library.ripple_add(m, a, b)
    q = m.reg("acc", s, en=en, rst=rst, init=3)
    m.output("sum", q)
    m.output("cout", cout)
    return m.build()


def test_write_contains_structure():
    text = write_verilog(sample_circuit())
    assert text.startswith("module dut (clk, a, b, en, rst, sum, cout);")
    assert "input [3:0] a;" in text
    assert "output [3:0] sum;" in text
    assert "DFFER" in text          # enable + reset flop cell
    assert "// path: alu" in text
    assert text.rstrip().endswith("endmodule")


def test_roundtrip_preserves_structure():
    circ = sample_circuit()
    back = roundtrip(circ)
    assert back.name == circ.name
    assert back.gate_count() == circ.gate_count()
    assert back.flop_count() == circ.flop_count()
    assert list(back.inputs) == list(circ.inputs)
    assert list(back.outputs) == list(circ.outputs)
    # hierarchy and flop metadata survive
    assert back.scopes() == circ.scopes()
    assert {f.init for f in back.flops} == {f.init for f in circ.flops}


def test_roundtrip_simulates_identically():
    circ = sample_circuit()
    back = roundtrip(circ)
    sa, sb = Simulator(circ), Simulator(back)
    stims = [{"a": 1, "b": 2, "en": 1, "rst": 0},
             {"a": 9, "b": 9, "en": 1, "rst": 0},
             {"a": 0, "b": 0, "en": 0, "rst": 0},
             {"a": 5, "b": 5, "en": 1, "rst": 1}]
    for stim in stims:
        sa.step_eval(stim)
        sb.step_eval(stim)
        assert sa.output("sum") == sb.output("sum")
        assert sa.output("cout") == sb.output("cout")
        sa.step_commit()
        sb.step_commit()


def test_roundtrip_with_memory():
    m = Module("memdut")
    addr = m.input("addr", 3)
    wd = m.input("wd", 4)
    we = m.input("we")
    with m.scope("core"):
        rd = m.memory("ram", 8, 4, addr, wd, we)
    m.output("rd", rd)
    circ = m.build()
    back = roundtrip(circ)
    assert len(back.memories) == 1
    mem = back.memories[0]
    assert mem.depth == 8 and mem.width == 4
    assert mem.name == "core/ram"

    sa, sb = Simulator(circ), Simulator(back)
    for stim in [{"addr": 2, "wd": 0xF, "we": 1},
                 {"addr": 2, "wd": 0, "we": 0},
                 {"addr": 2, "wd": 0, "we": 0}]:
        sa.step(stim)
        sb.step(stim)
    sa.step_eval({"addr": 2, "wd": 0, "we": 0})
    sb.step_eval({"addr": 2, "wd": 0, "we": 0})
    assert sa.output("rd") == sb.output("rd") == 0xF


def test_roundtrip_full_subsystem_zone_equivalence():
    """The interchange must preserve what the extraction tool needs."""
    sub = MemorySubsystem(SubsystemConfig.small_baseline())
    back = roundtrip(sub.circuit)
    from repro.zones import extract_zones
    zs_orig = extract_zones(sub.circuit, sub.extraction_config())
    zs_back = extract_zones(back, sub.extraction_config())
    assert {z.name for z in zs_orig.zones} == \
        {z.name for z in zs_back.zones}
    for zone in zs_orig.zones:
        assert zs_back.by_name(zone.name).cone_gates == zone.cone_gates


def test_parse_rejects_garbage():
    with pytest.raises(NetlistError):
        parse_verilog("this is not verilog")


def test_parse_bad_arity():
    text = """module bad (clk, y);
  output y;
  wire n0; // y
  AND2 g0 (n0);
endmodule
"""
    with pytest.raises(NetlistError, match="arity"):
        parse_verilog(text)
