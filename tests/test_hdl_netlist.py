"""Unit tests for the netlist IR."""

import pytest

from repro.hdl import (
    Circuit,
    Module,
    NetlistError,
    OP_AND,
    OP_BUF,
    OP_NOT,
    OP_XOR,
    split_bit_suffix,
)
from repro.hdl.netlist import Flop, OP_CONST0, OP_MUX


def test_split_bit_suffix():
    assert split_bit_suffix("foo[7]") == ("foo", 7)
    assert split_bit_suffix("a/b/reg[12]") == ("a/b/reg", 12)
    assert split_bit_suffix("plain") == ("plain", 0)
    assert split_bit_suffix("weird]") == ("weird]", 0)
    assert split_bit_suffix("x[not]") == ("x[not]", 0)


def test_gate_arity_checked():
    c = Circuit("t")
    a, b, y = c.new_net("a"), c.new_net("b"), c.new_net("y")
    with pytest.raises(NetlistError):
        c.add_gate(OP_NOT, (a, b), y)
    with pytest.raises(NetlistError):
        c.add_gate(OP_AND, (a,), y)
    c.add_gate(OP_AND, (a, b), y)  # correct arity passes


def test_multiple_driver_detection():
    c = Circuit("t")
    a, b, y = c.new_net("a"), c.new_net("b"), c.new_net("y")
    c.inputs["a"] = [a]
    c.inputs["b"] = [b]
    c.add_gate(OP_AND, (a, b), y)
    c.add_gate(OP_XOR, (a, b), y)  # second driver of y
    with pytest.raises(NetlistError, match="multiple drivers"):
        c.driver_map()


def test_combinational_cycle_detection():
    c = Circuit("t")
    a = c.new_net("a")
    x = c.new_net("x")
    y = c.new_net("y")
    c.inputs["a"] = [a]
    c.add_gate(OP_AND, (a, y), x)
    c.add_gate(OP_AND, (a, x), y)
    with pytest.raises(NetlistError, match="cycle"):
        c.levelize()


def test_cycle_through_flop_is_legal():
    c = Circuit("t")
    a = c.new_net("a")
    d = c.new_net("d")
    q = c.new_net("q")
    c.inputs["a"] = [a]
    c.add_gate(OP_XOR, (a, q), d)
    c.flops.append(Flop(name="q", d=d, q=q))
    c.validate()  # feedback through state is fine


def test_levelize_orders_dependencies():
    m = Module("t")
    a = m.input("a", 2)
    y = (a[0] & a[1]) ^ a[0]
    m.output("y", y)
    c = m.build()
    order = c.levelize()
    # the AND must be evaluated before the XOR consuming it
    pos = {c.gates[i].op: n for n, i in enumerate(order)}
    assert pos[OP_AND] < pos[OP_XOR]


def test_gate_count_excludes_buffers_and_consts():
    m = Module("t")
    a = m.input("a", 1)
    q = m.reg("r", a)  # creates a BUF for the d stub
    m.output("y", q & m.const(1))
    c = m.build()
    assert all(g.op != OP_MUX for g in c.gates)
    raw = len(c.gates)
    assert c.gate_count() < raw  # bufs/consts excluded


def test_stats_and_scopes():
    m = Module("t")
    a = m.input("a", 4)
    with m.scope("blk"):
        q = m.reg("r", a)
    m.output("y", q)
    c = m.build()
    stats = c.stats()
    assert stats["flops"] == 4
    assert stats["inputs"] == 4 and stats["outputs"] == 4
    assert "blk" in c.scopes()


def test_iter_flops_by_register_groups_bits():
    m = Module("t")
    a = m.input("a", 3)
    m.reg("multi", a)
    m.reg("single", a[0])
    m.output("y", a)
    c = m.build()
    groups = dict(c.iter_flops_by_register())
    assert len(groups["multi"]) == 3
    assert len(groups["single"]) == 1
    # bits sorted ascending
    bits = [f.name for f in groups["multi"]]
    assert bits == sorted(bits)


def test_find_net():
    m = Module("t")
    a = m.input("addr", 2)
    m.output("y", a)
    c = m.build()
    assert c.net_names[c.find_net("addr[1]")] == "addr[1]"
    with pytest.raises(NetlistError):
        c.find_net("nonexistent")


def test_fanout_map_consumers():
    m = Module("t")
    a = m.input("a", 1)
    b = a & a  # folded to a itself
    y = a ^ m.input("c", 1)
    m.output("y", y)
    m.output("z", b)
    c = m.build()
    fan = c.fanout_map()
    a_net = c.inputs["a"][0]
    kinds = {d[0] for d in fan[a_net]}
    assert "gate" in kinds or "output" in kinds


def test_memory_bits_accounting():
    m = Module("t")
    addr = m.input("addr", 3)
    wd = m.input("wd", 4)
    we = m.input("we", 1)
    rd = m.memory("ram", 8, 4, addr, wd, we)
    m.output("rd", rd)
    c = m.build()
    assert c.memory_bits() == 32


def test_const_fold_degenerate_mux():
    m = Module("t")
    sel = m.input("sel", 1)
    zero = m.const(0, 1)
    same = m.mux(sel, zero, zero)     # both arms const0 -> folded
    m.output("y", same)
    c = m.build()
    assert c.gates and all(g.op != OP_MUX for g in c.gates) or True
    assert c.outputs["y"][0] == c.find_net("const0")
    _ = OP_CONST0
