"""Tests for the soc-fmea command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_zones_command(capsys):
    code, out = run_cli(capsys, "zones", "--variant", "small-improved")
    assert code == 0
    assert "sensible zones" in out
    assert "register" in out


def test_zones_list(capsys):
    code, out = run_cli(capsys, "zones", "--variant", "small-baseline",
                        "--list")
    assert code == 0
    assert "fmem/decoder" in out


def test_fmea_command(capsys, tmp_path):
    csv_path = tmp_path / "sheet.csv"
    code, out = run_cli(capsys, "fmea", "--variant", "small-improved",
                        "--csv", str(csv_path))
    assert code == 0
    assert "FMEA summary" in out
    assert "SFF" in out
    assert csv_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("zone,kind,failure_mode")


def test_sensitivity_command(capsys):
    code, out = run_cli(capsys, "sensitivity", "--variant",
                        "small-improved", "--tolerance", "0.02")
    assert code == 0
    assert "nominal SFF" in out


def test_verilog_command(capsys, tmp_path):
    out_path = tmp_path / "netlist.v"
    code, _ = run_cli(capsys, "verilog", "--variant", "small-baseline",
                      "-o", str(out_path))
    assert code == 0
    text = out_path.read_text()
    assert text.startswith("module memss_small_baseline")
    assert "endmodule" in text


def test_validate_command(capsys):
    code, out = run_cli(capsys, "validate", "--variant",
                        "small-improved")
    assert code == 0
    assert "overall: PASS" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare")
    assert code == 0
    assert "baseline" in out and "improved" in out
    # the experiment's conclusion: improved reaches SIL3, baseline not
    lines = [ln for ln in out.splitlines() if "|" in ln]
    base_line = next(ln for ln in lines if "baseline" in ln)
    impr_line = next(ln for ln in lines if "improved" in ln)
    assert "no" in base_line and "yes" in impr_line


def test_campaign_command_serial(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--variant",
                        "small-improved", "--sample", "24",
                        "--store", str(tmp_path / "store"))
    assert code == 0
    assert "measured DC" in out
    assert "1 worker(s)" in out


def test_campaign_command_sharded(capsys, tmp_path):
    code, out = run_cli(capsys, "campaign", "--variant",
                        "small-improved", "--sample", "24",
                        "--workers", "2", "--progress",
                        "--store", str(tmp_path / "store"))
    assert code == 0
    assert "24 faults" in out
    assert "2 worker(s)" in out
    assert "24/24 faults simulated" in out


def test_campaign_no_cache_leaves_no_store(capsys, tmp_path,
                                           monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out = run_cli(capsys, "campaign", "--variant",
                        "small-improved", "--sample", "12",
                        "--no-cache")
    assert code == 0
    assert "store:" not in out
    assert not (tmp_path / ".socfmea_store").exists()


def test_campaign_cache_round_trip(capsys, tmp_path):
    store = str(tmp_path / "store")
    code, cold = run_cli(capsys, "campaign", "--variant",
                         "small-improved", "--sample", "24",
                         "--store", store)
    assert code == 0
    assert "24 misses" in cold and "0 hits" in cold

    code, warm = run_cli(capsys, "--store", store, "campaign",
                         "--variant", "small-improved",
                         "--sample", "24")
    assert code == 0
    assert "24 hits, 0 misses (100.0% hit rate)" in warm
    assert "0 faults simulated" in warm

    def metrics(text):
        return [ln for ln in text.splitlines()
                if ln.startswith("measured")]
    assert metrics(cold) == metrics(warm)


def test_store_subcommands(capsys, tmp_path):
    store = str(tmp_path / "store")
    for _ in range(2):
        code, _ = run_cli(capsys, "campaign", "--variant",
                          "small-improved", "--sample", "24",
                          "--store", store)
        assert code == 0

    code, out = run_cli(capsys, "store", "stats", "--store", store)
    assert code == 0
    assert "recorded runs         : 2" in out
    assert "cached fault outcomes : 24" in out

    code, out = run_cli(capsys, "store", "query", "--store", store)
    assert code == 0
    assert "recorded campaign runs" in out
    assert "memss_small_improved" in out

    code, out = run_cli(capsys, "store", "query", "--store", store,
                        "--run", "2")
    assert code == 0
    assert "run #2" in out and "measured DC" in out

    code, out = run_cli(capsys, "store", "diff", "--store", store)
    assert code == 0       # identical reruns: nothing regressed
    assert "store diff: run #1 -> #2" in out
    assert "faults reclassified : 0" in out

    code, out = run_cli(capsys, "store", "gc", "--store", store,
                        "--keep", "1")
    assert code == 0
    assert "runs removed     : 1" in out


def test_store_diff_needs_history(capsys, tmp_path):
    code = main(["store", "diff", "--store",
                 str(tmp_path / "empty")])
    assert code == 1
    assert "two completed runs" in capsys.readouterr().err


def test_version_flag(capsys):
    from repro import __version__
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_store_env_override(tmp_path, monkeypatch):
    from repro.cli import DEFAULT_STORE, resolve_store_path
    parser = build_parser()
    monkeypatch.delenv("SOCFMEA_STORE", raising=False)
    args = parser.parse_args(["campaign"])
    assert resolve_store_path(args) == DEFAULT_STORE
    monkeypatch.setenv("SOCFMEA_STORE", str(tmp_path / "env"))
    assert resolve_store_path(args) == str(tmp_path / "env")
    args = parser.parse_args(["campaign", "--store",
                              str(tmp_path / "flag")])
    assert resolve_store_path(args) == str(tmp_path / "flag")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_xcheck_command(capsys):
    code, out = run_cli(capsys, "xcheck", "--variant",
                        "small-improved")
    assert code == 0
    assert "reset coverage" in out
    assert "CLEAN" in out


def test_derating_command(capsys):
    code, out = run_cli(capsys, "derating", "--variant",
                        "small-improved", "--samples", "40")
    assert code == 0
    assert "SET derating" in out


def test_dossier_command(capsys, tmp_path):
    out_path = tmp_path / "dossier.txt"
    code, out = run_cli(capsys, "dossier", "--variant",
                        "small-improved", "--no-validation",
                        "--target-sil", "2", "-o", str(out_path))
    assert code == 0
    text = out_path.read_text()
    assert "SAFETY DOSSIER" in text
    assert "verdict" in text
