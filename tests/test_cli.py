"""Tests for the soc-fmea command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_zones_command(capsys):
    code, out = run_cli(capsys, "zones", "--variant", "small-improved")
    assert code == 0
    assert "sensible zones" in out
    assert "register" in out


def test_zones_list(capsys):
    code, out = run_cli(capsys, "zones", "--variant", "small-baseline",
                        "--list")
    assert code == 0
    assert "fmem/decoder" in out


def test_fmea_command(capsys, tmp_path):
    csv_path = tmp_path / "sheet.csv"
    code, out = run_cli(capsys, "fmea", "--variant", "small-improved",
                        "--csv", str(csv_path))
    assert code == 0
    assert "FMEA summary" in out
    assert "SFF" in out
    assert csv_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("zone,kind,failure_mode")


def test_sensitivity_command(capsys):
    code, out = run_cli(capsys, "sensitivity", "--variant",
                        "small-improved", "--tolerance", "0.02")
    assert code == 0
    assert "nominal SFF" in out


def test_verilog_command(capsys, tmp_path):
    out_path = tmp_path / "netlist.v"
    code, _ = run_cli(capsys, "verilog", "--variant", "small-baseline",
                      "-o", str(out_path))
    assert code == 0
    text = out_path.read_text()
    assert text.startswith("module memss_small_baseline")
    assert "endmodule" in text


def test_validate_command(capsys):
    code, out = run_cli(capsys, "validate", "--variant",
                        "small-improved")
    assert code == 0
    assert "overall: PASS" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare")
    assert code == 0
    assert "baseline" in out and "improved" in out
    # the experiment's conclusion: improved reaches SIL3, baseline not
    lines = [ln for ln in out.splitlines() if "|" in ln]
    base_line = next(ln for ln in lines if "baseline" in ln)
    impr_line = next(ln for ln in lines if "improved" in ln)
    assert "no" in base_line and "yes" in impr_line


def test_campaign_command_serial(capsys):
    code, out = run_cli(capsys, "campaign", "--variant",
                        "small-improved", "--sample", "24")
    assert code == 0
    assert "measured DC" in out
    assert "1 worker(s)" in out


def test_campaign_command_sharded(capsys):
    code, out = run_cli(capsys, "campaign", "--variant",
                        "small-improved", "--sample", "24",
                        "--workers", "2", "--progress")
    assert code == 0
    assert "24 faults" in out
    assert "2 worker(s)" in out
    assert "24/24 faults simulated" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_xcheck_command(capsys):
    code, out = run_cli(capsys, "xcheck", "--variant",
                        "small-improved")
    assert code == 0
    assert "reset coverage" in out
    assert "CLEAN" in out


def test_derating_command(capsys):
    code, out = run_cli(capsys, "derating", "--variant",
                        "small-improved", "--samples", "40")
    assert code == 0
    assert "SET derating" in out


def test_dossier_command(capsys, tmp_path):
    out_path = tmp_path / "dossier.txt"
    code, out = run_cli(capsys, "dossier", "--variant",
                        "small-improved", "--no-validation",
                        "--target-sil", "2", "-o", str(out_path))
    assert code == 0
    text = out_path.read_text()
    assert "SAFETY DOSSIER" in text
    assert "verdict" in text
