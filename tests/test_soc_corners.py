"""Corner-case behavioural tests for the memory sub-system."""

import pytest

from repro.hdl import Simulator
from repro.soc import AhbMaster, MemorySubsystem, SubsystemConfig


@pytest.fixture(scope="module")
def improved():
    return MemorySubsystem(SubsystemConfig.small_improved())


@pytest.fixture(scope="module")
def baseline():
    return MemorySubsystem(SubsystemConfig.small_baseline())


def master(sub, **kw):
    m = AhbMaster(sub, **kw)
    m.reset()
    return m


# ----------------------------------------------------------------------
# protocol corners
# ----------------------------------------------------------------------
def test_back_to_back_writes_same_address(improved):
    m = master(improved)
    m.write(5, 0x11, gap=2)
    m.write(5, 0x22, gap=2)
    m.write(5, 0x33, gap=2)
    assert m.read(5).data == 0x33


def test_interleaved_addresses(improved):
    m = master(improved)
    for i in range(8):
        m.write(i, i * 3 % 256)
    for i in reversed(range(8)):
        assert m.read(i).data == i * 3 % 256


def test_write_entire_address_space(improved):
    m = master(improved)
    for addr in range(improved.cfg.depth):
        m.write(addr, (addr * 7 + 1) & 0xFF)
    for addr in range(improved.cfg.depth):
        assert m.read(addr).data == (addr * 7 + 1) & 0xFF


def test_wraparound_data_values(improved):
    m = master(improved)
    ones = (1 << improved.cfg.data_bits) - 1
    for value in (0, 1, ones, ones - 1, 0x80):
        m.write(9, value)
        assert m.read(9).data == value


def test_read_unwritten_address_is_clean_zero(improved):
    """Preloaded background holds valid codewords for zero data."""
    m = master(improved)
    r = m.read(improved.cfg.depth - 1)
    assert r.data == 0
    assert not r.any_alarm


def test_rvalid_pulses_exactly_once_per_read(improved):
    sim = improved.simulator()
    ops = ([improved.reset_op()] * 2
           + [improved.write(1, 5)] + [improved.idle()] * 2
           + [improved.read(1)] + [improved.idle()] * 4)
    pulses = 0
    for op in ops:
        sim.step_eval(op)
        pulses += sim.output("rvalid")
        sim.step_commit()
    assert pulses == 1


def test_hrdata_zero_when_not_valid(improved):
    sim = improved.simulator()
    improved.preload(sim, {3: 0xAB})
    for op in [improved.reset_op()] * 2 + [improved.idle()] * 5:
        sim.step_eval(op)
        if not sim.output("rvalid"):
            assert sim.output("hrdata") == 0
        sim.step_commit()


# ----------------------------------------------------------------------
# scrub / traffic interactions
# ----------------------------------------------------------------------
def test_scrubber_yields_to_bus_traffic(improved):
    """Back-to-back traffic with scrub enabled must stay correct."""
    m = master(improved, scrub_en=1)
    payload = {a: (a * 13 + 7) & 0xFF for a in range(8)}
    for a, d in payload.items():
        m.write(a, d, gap=1)
    for a, d in payload.items():
        assert m.read(a).data == d


def test_scrub_does_not_corrupt_clean_memory(improved):
    m = master(improved, scrub_en=1)
    m.write(4, 0x77)
    image_before = [m.sim.read_mem_word("memarray/array", w)
                    for w in range(improved.cfg.depth)]
    m.idle(60)   # several full background scans
    image_after = [m.sim.read_mem_word("memarray/array", w)
                   for w in range(improved.cfg.depth)]
    assert image_before == image_after


def test_scrub_repairs_two_errors_in_sequence(improved):
    m = master(improved, scrub_en=1)
    m.write(2, 0x21)
    m.write(9, 0x43)
    for word, bit in ((2, 0), (9, 3)):
        m.sim.schedule_mem_flip("memarray/array", word, bit,
                                cycle=m.sim.cycle)
        m.read(word)       # CE -> repair scheduled
        m.idle(20)
    assert m.sim.read_mem_word("memarray/array", 2) == \
        improved.encode_word(0x21, 2)
    assert m.sim.read_mem_word("memarray/array", 9) == \
        improved.encode_word(0x43, 9)


def test_uncorrectable_error_not_scrub_written(improved):
    """A double error cannot be repaired: the scrubber must not write
    a bogus 'fix'."""
    m = master(improved, scrub_en=1)
    m.write(6, 0x0F)
    for bit in (0, 1):
        m.sim.schedule_mem_flip("memarray/array", 6, bit,
                                cycle=m.sim.cycle)
    r = m.read(6)          # flips land at the read; UE alarm
    assert r.alarms["alarm_ue"] == 1
    corrupted = m.sim.read_mem_word("memarray/array", 6)
    assert corrupted != improved.encode_word(0x0F, 6)
    m.idle(30)
    assert m.sim.read_mem_word("memarray/array", 6) == corrupted


# ----------------------------------------------------------------------
# BIST interactions
# ----------------------------------------------------------------------
def test_bist_trashes_then_traffic_recovers(baseline):
    m = master(baseline)
    assert m.run_bist() is True
    # after BIST the array holds raw patterns; normal writes recover
    m.write(3, 0x5C)
    assert m.read(3).data == 0x5C


def test_write_during_bist_held_in_buffer(baseline):
    """A bus write issued while BIST owns the port drains afterwards."""
    sim = baseline.simulator()
    ops = [baseline.reset_op()] * 2
    budget = 4 * baseline.cfg.depth + 32
    bist_ops = [baseline.idle(bist_run=1) for _ in range(budget)]
    bist_ops[5] = baseline.write(2, 0x5A, bist_run=1)
    ops += bist_ops + [baseline.idle()] * 4
    for op in ops:
        sim.step(op)
    # the buffered write drained once BIST released the port
    assert sim.read_mem_word("memarray/array", 2) == \
        baseline.encode_word(0x5A, 2)


def test_err_inject_zero_is_transparent(improved):
    a = master(improved)
    b = master(MemorySubsystem(SubsystemConfig.small_improved()))
    a.write(7, 0x2D)
    b.sim.set_input("err_inject", 0)
    b.write(7, 0x2D)
    assert a.read(7).data == b.read(7).data == 0x2D


# ----------------------------------------------------------------------
# MPU corners
# ----------------------------------------------------------------------
def test_mpu_reads_never_blocked(improved):
    m = master(improved, mpu=0)       # all pages write-protected
    r = m.read(0)
    assert r.valid                    # reads always proceed
    assert r.alarms["alarm_mpu"] == 0


def test_mpu_reconfiguration_takes_one_cycle(improved):
    m = master(improved, mpu=0)
    m.write(1, 0xEE)                  # blocked
    m.mpu = (1 << improved.cfg.mpu_pages) - 1
    m.idle(1)                         # config register latches
    m.write(1, 0xEE)                  # now allowed
    assert m.read(1).data == 0xEE
