"""Extension — the HFT = 1 route of §2, realized as a 1oo2 pair.

"With a HFT equal to one, the SFF should be greater than 90%": two
complete channels plus a cross-comparator ("double RAM with hardware
comparison", IEC A.6 'high') reach SIL3 with the *baseline* channel —
the architectural alternative to the paper's single-channel ≥ 99 %
redesign, at roughly 2x the silicon.
"""

from conftest import report

from repro.iec61508 import SIL, max_sil
from repro.soc import MemorySubsystem, SubsystemConfig
from repro.soc.dualchannel import DualChannelSubsystem


def test_hft1_route(benchmark):
    cfg = SubsystemConfig.baseline(name="memss_dual_bench")

    def run():
        dual = DualChannelSubsystem(cfg)
        return dual, dual.worksheet().totals()

    dual, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    single = MemorySubsystem(cfg).worksheet().totals()

    granted_hft1 = max_sil(totals.sff, hft=1)
    report(benchmark,
           paper="HFT=1 needs SFF > 90% for SIL3 (§2)",
           single_channel_sff=f"{single.sff * 100:.2f}%",
           dual_sff=f"{totals.sff * 100:.2f}%",
           sil_at_hft1=str(granted_hft1),
           gate_ratio=f"{dual.circuit.gate_count() / 1260:.2f}x")

    # the single baseline channel fails the HFT=0 SIL3 bar...
    assert max_sil(single.sff, hft=0) < SIL.SIL3
    # ...but already clears the HFT=1 bar — and the 1oo2 architecture
    # is entitled to claim it
    assert totals.sff > 0.90
    assert granted_hft1 >= SIL.SIL3


def test_cross_comparator_catches_the_blind_spot(benchmark):
    """The §6 baseline weakness (silent pipe corruption) becomes
    dangerous-*detected* under 1oo2."""
    dual = DualChannelSubsystem(
        SubsystemConfig.small_baseline(name="dual_blindspot"))

    def run():
        sim = dual.simulator()
        for op in (dual.reset_op(), dual.reset_op(),
                   dual.write(3, 0x5A), dual.idle(), dual.idle()):
            sim.step(op)
        sim.schedule_flop_flip("cha/fmem/decoder/pipe_data[1]",
                               cycle=sim.cycle + 2)
        alarm = 0
        for op in (dual.read(3), dual.idle(), dual.idle(),
                   dual.idle()):
            sim.step_eval(op)
            alarm |= sim.output("alarm_cross")
            sim.step_commit()
        return alarm

    alarm = benchmark.pedantic(run, rounds=2, iterations=1)
    report(benchmark, blind_spot_detected=bool(alarm))
    assert alarm == 1
