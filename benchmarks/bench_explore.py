"""Incremental vs cold design-space exploration.

The Pareto search re-runs a campaign per candidate design point; the
content-addressed store makes each step incremental — only the fault
cones the mitigation touched are re-simulated, every other cone is a
warm hit.  This suite runs a bounded search once through a shared
store and then replays the *same* evaluated variant set cold (fresh
store, cache disabled) and checks the economics: the incremental walk
must simulate strictly fewer faults, the incremental phase must stay
at or above a 50% warm-hit rate, and the metrics of both paths must
be bit-identical per variant.

Writes ``BENCH_explore.json`` (into ``$BENCH_JSON_DIR``, default the
current directory) so CI archives the evidence.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import report

from repro.explore import ExploreConfig, explore
from repro.service.core import CampaignService

_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _collect_record(request):
    """Mirror each benchmark's stats + extra_info into the JSON log."""
    yield
    bench = request.node.funcargs.get("benchmark")
    if bench is None or getattr(bench, "stats", None) is None:
        return
    entry = {"extra_info": dict(bench.extra_info)}
    entry["timing"] = {
        key: value for key, value in bench.stats.stats.as_dict().items()
        if key in ("min", "max", "mean", "stddev", "median", "rounds",
                   "ops")}
    _RECORDS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_explore.json`` once the module is done."""
    yield
    if not _RECORDS:
        return
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) \
        / "BENCH_explore.json"
    out.write_text(json.dumps(
        {"suite": "bench_explore", "records": _RECORDS},
        indent=2, sort_keys=True))


def test_incremental_vs_cold_exploration(benchmark, tmp_path_factory):
    """One bounded search, then the same variants from scratch."""
    def search():
        service = CampaignService(
            str(tmp_path_factory.mktemp("explore") / "store"))
        config = ExploreConfig(variant="small-baseline", banks=2,
                               target_sff=0.97, budget=6,
                               use_queue=False)
        return explore(service, config)

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    incremental_s = benchmark.stats.stats.as_dict()["min"]

    # replay every evaluated variant cold: fresh store, cache off
    cold_service = CampaignService(
        str(tmp_path_factory.mktemp("cold") / "store"))
    cold_simulated = 0
    cold_start = time.perf_counter()
    per_variant = []
    for ev in result.evaluations:
        outcome = cold_service.run_campaign(
            ev.point.request(use_cache=False))
        summary = outcome.summary_dict()
        assert summary["hits"] == 0
        # incremental must not buy speed with accuracy
        assert summary["measured_dc"] == ev.measured_dc
        assert summary["safe_fraction"] == ev.safe_fraction
        # no cache: every fault is simulated
        cold_simulated += summary["faults"]
        per_variant.append({
            "point": ev.point.name,
            "faults": ev.faults,
            "incremental_simulated": ev.simulated,
            "cold_simulated": summary["faults"],
            "warm_hits": ev.hits,
        })
    cold_s = time.perf_counter() - cold_start

    saved = 1 - result.total_simulated / max(cold_simulated, 1)
    report(benchmark,
           variants=len(result.evaluations),
           incremental_simulated=result.total_simulated,
           cold_simulated=cold_simulated,
           simulations_saved=f"{saved * 100:.1f}%",
           hit_rate=f"{result.hit_rate * 100:.2f}%",
           incremental_hit_rate=
           f"{result.incremental_hit_rate * 100:.2f}%",
           incremental_s=f"{incremental_s:.2f}",
           cold_s=f"{cold_s:.2f}",
           per_variant=per_variant,
           recommended=result.recommended.point.name,
           recommended_sff=f"{result.recommended.claimed_sff:.4f}")

    # the headline economics CI gates on
    assert result.total_simulated < cold_simulated
    assert result.incremental_hit_rate >= 0.5
    # the verification re-run is entirely warm
    assert result.verification is not None
    assert result.verification.simulated == 0


def test_warm_restart_of_a_finished_search(benchmark,
                                           tmp_path_factory):
    """Re-running a search over its own store simulates ~nothing.

    Resume-after-interrupt is the same mechanism: every campaign the
    first walk recorded is served by content address, so the restart
    pays only elaboration and bookkeeping.
    """
    root = str(tmp_path_factory.mktemp("restart") / "store")
    config = ExploreConfig(variant="small-baseline", banks=2,
                           target_sff=0.97, budget=4,
                           use_queue=False)
    first = explore(CampaignService(root), config)

    def restart():
        return explore(CampaignService(root), config)

    second = benchmark.pedantic(restart, rounds=1, iterations=1)
    assert second.total_simulated == 0
    assert second.recommended.point == first.recommended.point
    assert second.recommended.measured_dc == \
        first.recommended.measured_dc
    report(benchmark,
           first_simulated=first.total_simulated,
           restart_simulated=second.total_simulated,
           restart_hit_rate=f"{second.hit_rate * 100:.1f}%")
