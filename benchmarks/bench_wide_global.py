"""E8 — §5(d): selective wide/global HW fault injection.

"for wide/global HW faults, a selective fault injection is performed.
The validation is successful if the results of such injection confirm
the results of the exhaustive sensible zone failure fault injection" —
i.e. wide/global faults must not produce effects the zone-level
analysis cannot explain.
"""

from conftest import report

import pytest

from repro.faultinjection import (
    BridgeFault,
    CandidateList,
    GlobalStuckFault,
    build_environment,
)
from repro.zones import FaultClass, FaultClassifier, ZoneKind, \
    predict_effects_table


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


def _wide_global_faults(env, pairs=4, globals_=2):
    faults = []
    for (za, zb), _n in env.zone_set.correlation.correlated_pairs()[
            :pairs]:
        a, b = env.zone_set.by_name(za), env.zone_set.by_name(zb)
        if a.nets and b.nets:
            faults.append(BridgeFault(
                target=env.circuit.net_names[a.nets[0]], zone=za,
                victim=env.circuit.net_names[b.nets[0]]))
    critical = env.zone_set.of_kind(ZoneKind.CRITICAL_NET)
    critical.sort(key=lambda z: -z.attrs.get("fanout", 0))
    for zone in critical[:globals_]:
        faults.append(GlobalStuckFault(
            target=zone.name, zone=zone.name,
            nets=tuple(env.circuit.net_names[n] for n in zone.nets),
            value=0))
    return CandidateList(faults=faults)


def test_wide_global_injection_consistent(benchmark, env):
    faults = _wide_global_faults(env)

    campaign = benchmark.pedantic(
        lambda: env.manager().run(faults), rounds=1, iterations=1)

    predicted = predict_effects_table(env.zone_set)
    classifier = FaultClassifier(env.zone_set)
    unexplained = []
    for res in campaign.results:
        fault = res.fault
        zones = set()
        if isinstance(fault, BridgeFault):
            zones = {fault.zone,
                     *classifier.classify_net(fault.victim).zones,
                     *classifier.classify_net(fault.target).zones}
        else:
            for net in fault.nets:
                zones |= set(classifier.classify_net(net).zones)
        reachable = set()
        for z in zones:
            pred = predicted.get(z)
            if pred:
                reachable |= {e.observation for e in pred.effects}
        for point in res.effects:
            if reachable and point not in reachable:
                unexplained.append((fault.name, point))

    report(benchmark, wide_global_faults=len(faults),
           unexplained_effects=len(unexplained))
    assert not unexplained, unexplained


def test_fault_extent_classification(benchmark, env):
    """Local/wide/global census over the whole netlist (§3)."""
    classifier = FaultClassifier(env.zone_set)

    census = benchmark(classifier.census)
    report(benchmark, census=census)
    assert census[FaultClass.LOCAL.value] > 0
    assert census[FaultClass.WIDE.value] > 0
    total = sum(census.values())
    # most logic sits in a single zone's cone (local faults dominate)
    assert census[FaultClass.LOCAL.value] > 0.3 * total
