"""F5 — Figure 5: the memory sub-system architecture.

Builds both paper-size variants, checks the architecture contains every
block of the figure (memory array, memory controller, F-MEM with
coder/decoder + scrubbing, MCE with MPU), and measures elaboration and
golden-simulation throughput.
"""

from conftest import report

from repro.soc import (
    AhbMaster,
    MemorySubsystem,
    SubsystemConfig,
    validation_workload,
)


def test_build_both_variants(benchmark):
    def build():
        return (MemorySubsystem(SubsystemConfig.baseline()),
                MemorySubsystem(SubsystemConfig.improved()))

    base, impr = benchmark(build)
    report(benchmark,
           baseline=base.circuit.stats(),
           improved=impr.circuit.stats())

    for sub in (base, impr):
        scopes = " ".join(sub.circuit.scopes())
        for block in ("memarray", "memctrl", "fmem/coder",
                      "fmem/decoder", "fmem/scrub", "fmem/wbuf",
                      "mce"):
            assert block in scopes, block
    # the improvements add hardware
    assert impr.circuit.gate_count() > base.circuit.gate_count()
    # both store data + check bits
    assert base.circuit.memories[0].width == 39
    assert impr.circuit.memories[0].width == 39


def test_golden_simulation_throughput(benchmark, improved_full):
    sub = improved_full
    workload = validation_workload(sub, quick=True)
    stimuli = list(workload)[:300]

    def run():
        sim = sub.simulator()
        for op in stimuli:
            sim.step(op)
        return sim.cycle

    cycles = benchmark.pedantic(run, rounds=2, iterations=1)
    assert cycles == len(stimuli)
    report(benchmark, gates=sub.circuit.gate_count(),
           cycles=cycles)


def test_functional_sanity_paper_size(benchmark, improved_full):
    def run():
        master = AhbMaster(improved_full)
        master.reset()
        payload = {addr: (addr * 2654435761) & 0xFFFFFFFF
                   for addr in (0, 1, 127, 255)}
        for addr, data in payload.items():
            master.write(addr, data)
        return all(master.read(a).data == d
                   for a, d in payload.items())

    ok = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ok
