"""Ablation — §6 design choices, one at a time (DESIGN.md §5).

"the architecture was modified by adding the addresses to the coding
..., by adding parity bits to the write buffer and by deeply modifying
the decoder implementation" — each counter-measure must contribute a
non-negative SFF gain, with the decoder improvements among the biggest
movers, and the full stack crossing the SIL3 bar.
"""

from conftest import report

from repro.soc import MemorySubsystem, SubsystemConfig

FLAGS = ("address_in_ecc", "write_buffer_parity", "coder_checker",
         "redundant_pipe_checker", "distributed_syndrome",
         "sw_startup_tests", "scrub_parity")


def _sff(cfg):
    return MemorySubsystem(cfg).worksheet().totals().sff


def test_single_improvement_gains(benchmark):
    base_cfg = SubsystemConfig.baseline()

    def run():
        base = _sff(base_cfg)
        gains = {}
        for flag in FLAGS:
            cfg = base_cfg.with_flags(name=f"ab_{flag}", **{flag: True})
            gains[flag] = _sff(cfg) - base
        return base, gains

    base, gains = benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, baseline_sff=f"{base * 100:.2f}%",
           gains={k: f"{v * 100:+.2f} pt" for k, v in gains.items()})

    # data-protecting measures gain outright; pure checker logic adds
    # its own silicon FIT, so stand-alone it may cost a fraction of a
    # point (its benefit materialises when it covers the other blocks)
    for flag in ("address_in_ecc", "write_buffer_parity",
                 "redundant_pipe_checker", "sw_startup_tests"):
        assert gains[flag] > 0, flag
    assert all(gain >= -0.003 for gain in gains.values()), gains
    # the decoder rework (paper: "this last action was really
    # important to increase the SFF") is the single biggest mover
    assert gains["redundant_pipe_checker"] == max(gains.values())


def test_cumulative_stack_reaches_sil3(benchmark):
    base_cfg = SubsystemConfig.baseline()

    def run():
        flags = {}
        trajectory = [_sff(base_cfg)]
        for flag in FLAGS:
            flags[flag] = True
            trajectory.append(_sff(base_cfg.with_flags(
                name=f"stack_{len(flags)}", **flags)))
        return trajectory

    trajectory = benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, trajectory=[f"{s * 100:.2f}%"
                                  for s in trajectory])
    # monotone climb (up to checker-FIT noise) from ~95 % to >= 99 %
    assert all(b >= a - 0.003
               for a, b in zip(trajectory, trajectory[1:]))
    assert trajectory[0] < 0.99
    assert trajectory[-1] >= 0.99


def test_removing_one_improvement_can_break_sil3(benchmark):
    """Dropping the decoder rework from the improved design must cost
    enough SFF to show it is load-bearing."""
    improved = SubsystemConfig.improved()

    def run():
        full = _sff(improved)
        without = _sff(improved.with_flags(
            name="no_pipe_checker", redundant_pipe_checker=False))
        return full, without

    full, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, full=f"{full * 100:.2f}%",
           without_pipe_checker=f"{without * 100:.2f}%")
    assert without < full - 0.003
