"""E9 — §6: the criticality ranking of the baseline design.

"the spreadsheet identified the critical zones.  Besides the memory
array itself, the most critical blocks were the BIST control logic, the
registers involved in addresses latching, most of the blocks of the
decoder, the registers of the write buffer, some of the blocks of the
MCE handling the interconnections with the bus and so forth."
"""

from conftest import report

from repro.fmea import critical_zones, rank_zones


def test_baseline_criticality_ranking(benchmark, baseline_full):
    sheet = baseline_full.worksheet()

    ranking = benchmark(lambda: rank_zones(sheet))
    top = [row.zone for row in ranking[:30]]
    report(benchmark, top10=top[:10])

    joined = " ".join(top)
    # the paper's named culprits must appear among the critical zones
    assert "fmem/wbuf" in joined, "write-buffer registers"
    assert "fmem/decoder" in joined, "decoder blocks"
    assert "memctrl" in joined or "mce" in joined, \
        "controller/MCE logic"
    # ranking is sorted by decreasing dangerous-undetected rate
    dus = [row.rates.lambda_du for row in ranking]
    assert dus == sorted(dus, reverse=True)
    # cumulative share reaches 100 %
    assert abs(ranking[-1].cumulative - 1.0) < 1e-9


def test_improved_ranking_drains_the_same_zones(benchmark,
                                                baseline_full,
                                                improved_full):
    """The improvements must specifically reduce the baseline's top
    culprits (that is what the redesign targeted)."""
    def run():
        base = baseline_full.worksheet()
        impr = improved_full.worksheet()
        return base.totals_by_zone(), impr.totals_by_zone()

    base_by, impr_by = benchmark(run)
    base_top = sorted(base_by.items(),
                      key=lambda kv: -kv[1].lambda_du)[:8]
    improved_better = 0
    for zone, rates in base_top:
        after = impr_by.get(zone)
        if after is None or after.lambda_du < rates.lambda_du:
            improved_better += 1
    report(benchmark,
           baseline_top=[z for z, _ in base_top],
           improved_on=improved_better)
    assert improved_better >= 6


def test_critical_zone_thresholding(benchmark, baseline_full):
    sheet = baseline_full.worksheet()
    crit = benchmark(lambda: critical_zones(sheet,
                                            du_share_threshold=0.02))
    report(benchmark, critical=crit)
    assert 3 <= len(crit) <= 40
