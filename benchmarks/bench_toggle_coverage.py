"""E6 — §5(b): workload completeness.

"the efficiency of the workload in covering the HW gates of the
gate-level netlist is measured, for instance by using a toggle count
coverage ...  If the toggle count percentage (i.e. nets/gates toggling
at least once) ... is greater than a defined value (default 99%), the
validation is successful."
"""

from conftest import report

from repro.hdl import measure_toggle_coverage
from repro.soc import validation_workload
from repro.zones.effects import diagnostic_only_nets


def _functional_coverage(sub):
    full = validation_workload(sub, quick=False)
    toggle = measure_toggle_coverage(
        sub.circuit, full, setup=lambda s: sub.preload(s, {}))
    diag_only = diagnostic_only_nets(
        sub.circuit, sub.extract_zones().observation_points)
    names = {sub.circuit.net_names[n] for n in diag_only}
    functional_misses = [n for n in toggle.untoggled
                         if n not in names]
    functional_total = toggle.total - len(diag_only)
    covered = functional_total - len(functional_misses)
    return covered / functional_total, toggle


def test_workload_toggle_coverage_improved(benchmark, improved_small):
    coverage, toggle = benchmark.pedantic(
        lambda: _functional_coverage(improved_small), rounds=1,
        iterations=1)
    report(benchmark,
           paper_threshold="99%",
           functional_coverage=f"{coverage * 100:.2f}%",
           raw_coverage=toggle.summary())
    assert coverage >= 0.99


def test_workload_toggle_coverage_baseline(benchmark, baseline_small):
    coverage, _ = benchmark.pedantic(
        lambda: _functional_coverage(baseline_small), rounds=1,
        iterations=1)
    report(benchmark, functional_coverage=f"{coverage * 100:.2f}%")
    assert coverage >= 0.99


def test_incomplete_workload_fails_threshold(benchmark, improved_small):
    """A trivial workload must be rejected by the completeness check."""
    sub = improved_small
    stimuli = [sub.idle() for _ in range(10)]

    toggle = benchmark(lambda: measure_toggle_coverage(
        sub.circuit, stimuli, setup=lambda s: sub.preload(s, {})))
    report(benchmark, coverage=f"{toggle.coverage * 100:.2f}%")
    assert not toggle.passed
