"""E2/E3 — §6: the headline SFF numbers.

* baseline: "resulting SFF (around 95%) was not enough to reach SIL3"
* improved: "The resulting SFF of this second implementation was
  99,38%" — >= 99 % grants SIL3 at HFT = 0.
"""

from repro.iec61508 import SIL, max_sil


def test_baseline_sff(benchmark, baseline_full):
    sub = baseline_full
    zone_set = sub.extract_zones()

    sheet = benchmark(lambda: sub.worksheet(zone_set))
    sff = sheet.totals().sff
    benchmark.extra_info.update({
        "paper_sff": "around 95%",
        "measured_sff": f"{sff * 100:.2f}%",
        "sil_hft0": str(max_sil(sff, 0)),
    })
    # shape: low/mid 90s, below the 99 % SIL3 bar
    assert 0.92 <= sff < 0.99, sff
    granted = max_sil(sff, hft=0)
    assert granted is not None and granted < SIL.SIL3


def test_improved_sff(benchmark, improved_full):
    sub = improved_full
    zone_set = sub.extract_zones()

    sheet = benchmark(lambda: sub.worksheet(zone_set))
    sff = sheet.totals().sff
    benchmark.extra_info.update({
        "paper_sff": "99.38%",
        "measured_sff": f"{sff * 100:.2f}%",
        "sil_hft0": str(max_sil(sff, 0)),
    })
    # shape: at or above the 99 % SIL3 bar, close to the paper value
    assert sff >= 0.99, sff
    assert abs(sff - 0.9938) < 0.005, sff
    assert max_sil(sff, hft=0) is SIL.SIL3


def test_improvement_margin(benchmark, baseline_full, improved_full):
    """The improved design must clearly dominate the baseline."""
    def run():
        base = baseline_full.worksheet().totals()
        impr = improved_full.worksheet().totals()
        return base, impr

    base, impr = benchmark(run)
    assert impr.sff > base.sff + 0.03
    assert impr.dc > base.dc
    assert impr.lambda_du < base.lambda_du / 3
