"""Queue overhead of the campaign service path.

``soc-fmea serve`` routes every campaign through the durable job
queue: submit, claim (one ``BEGIN IMMEDIATE`` transaction), lease
heartbeats from inside the supervisor loop, and a result row on
completion.  All of that is bookkeeping around the exact same
:class:`~repro.faultinjection.supervisor.CampaignSupervisor` the
``campaign`` verb drives directly — so on the reduced improved memory
subsystem the service path must stay within 10% of the direct
supervisor, and the queue's own primitives must be cheap enough to
disappear next to any real campaign.

Writes ``BENCH_service.json`` (into ``$BENCH_JSON_DIR``, default the
current directory) so CI archives the overhead measurement.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import report

from repro.service import CampaignRequest, CampaignService, JobQueue
from repro.service.daemon import DaemonConfig, ServiceDaemon


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start

_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _collect_record(request):
    """Mirror each benchmark's stats + extra_info into the JSON log."""
    yield
    bench = request.node.funcargs.get("benchmark")
    if bench is None or getattr(bench, "stats", None) is None:
        return
    entry = {"extra_info": dict(bench.extra_info)}
    entry["timing"] = {
        key: value for key, value in bench.stats.stats.as_dict().items()
        if key in ("min", "max", "mean", "stddev", "median", "rounds",
                   "ops")}
    _RECORDS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_service.json`` once the module is done."""
    yield
    if not _RECORDS:
        return
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) \
        / "BENCH_service.json"
    out.write_text(json.dumps(
        {"suite": "bench_service", "records": _RECORDS},
        indent=2, sort_keys=True))


def test_service_path_overhead(benchmark, tmp_path_factory):
    """submit → claim → heartbeat → complete around one campaign vs
    the same campaign driven directly (the ``campaign`` verb's path,
    which runs the supervisor without any queue).  Both are cold
    store-backed full-workload runs — every simulation and every
    durable evidence write happens identically on both sides — so
    the measured delta is purely queue + daemon bookkeeping."""
    request = CampaignRequest(variant="small-improved", full=True)

    roots = iter(tmp_path_factory.mktemp("svc") / f"store{i}"
                 for i in range(64))

    def direct():
        outcome = CampaignService(next(roots)).run_campaign(request)
        assert outcome.exit_code == 0
        return outcome

    def through_service():
        root = next(roots)
        service = CampaignService(root)
        service.submit(request)
        code = ServiceDaemon(root, DaemonConfig(
            drain=True, verbose=False)).serve()
        assert code == 0
        return service.status(1)

    reference = direct()    # also warms the simulator caches
    base = min(_timed(direct) for _ in range(3))
    job = benchmark.pedantic(through_service, rounds=3, iterations=1)

    assert job.result["faults"] == reference.faults
    assert job.result["measured_dc"] == reference.measured_dc
    assert job.result["safe_fraction"] == reference.safe_fraction

    service_s = benchmark.stats.stats.as_dict()["min"]
    overhead = service_s / max(base, 1e-9) - 1.0
    report(benchmark,
           injections=reference.faults,
           direct_s=f"{base:.2f}",
           service_s=f"{service_s:.2f}",
           queue_overhead_pct=f"{overhead * 100:.1f}%")
    # well under a second the ratio is noise-dominated; elsewhere the
    # queue must cost <10% of the direct path
    if base > 0.5:
        assert overhead < 0.10


def test_queue_primitive_throughput(benchmark, tmp_path_factory):
    """Raw submit/claim/complete round-trips per second — the fixed
    cost a job pays before any simulation starts."""
    root = tmp_path_factory.mktemp("svc") / "queue"

    def lifecycle():
        with JobQueue(root) as queue:
            job_id = queue.submit({"variant": "small-improved"})
            job = queue.claim("bench", lease_seconds=60.0)
            assert job.job_id == job_id
            queue.start(job_id, "bench")
            queue.heartbeat(job_id, "bench")
            queue.complete(job_id, "bench", {"exit_code": 0})

    benchmark(lifecycle)
    per_job_ms = benchmark.stats.stats.as_dict()["mean"] * 1e3
    report(benchmark, per_job_lifecycle_ms=f"{per_job_ms:.2f}")
    # five write transactions must stay far below one simulated fault
    assert per_job_ms < 250
