"""E4 — §4/§6: sensitivity of the final DC/SFF to assumption spans.

"it was very stable as well, i.e. changes on S, D, F and fault models
didn't change the result in a sensible way" — the improved design must
hold SIL3 (SFF >= 99 %) under every span; the baseline, sitting on
uncovered logic, moves more.
"""

from repro.fmea import stability_report


def test_improved_stability(benchmark, improved_full):
    sheet = improved_full.worksheet()

    result = benchmark(lambda: stability_report(sheet))
    benchmark.extra_info.update({
        "paper": "very stable — spans don't change the result",
        "nominal_sff": f"{result.nominal_sff * 100:.2f}%",
        "min_sff": f"{result.min_sff * 100:.2f}%",
        "max_delta": f"{result.max_delta_sff * 100:.2f} pt",
    })
    assert result.nominal_sff >= 0.99
    assert result.min_sff >= 0.99           # SIL3 holds everywhere
    assert result.max_delta_sff < 0.005     # < half a point of swing


def test_baseline_moves_more(benchmark, baseline_full, improved_full):
    def run():
        return (stability_report(baseline_full.worksheet()),
                stability_report(improved_full.worksheet()))

    base, impr = benchmark(run)
    benchmark.extra_info.update({
        "baseline_max_delta": f"{base.max_delta_sff * 100:.2f} pt",
        "improved_max_delta": f"{impr.max_delta_sff * 100:.2f} pt",
    })
    assert base.max_delta_sff > impr.max_delta_sff


def test_every_span_keeps_metrics_valid(benchmark, improved_full):
    result = benchmark(lambda: stability_report(
        improved_full.worksheet()))
    assert len(result.results) >= 7
    for span in result.results:
        assert 0.0 <= span.sff <= 1.0
        assert 0.0 <= span.dc <= 1.0
