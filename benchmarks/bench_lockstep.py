"""Extension — IEC table A.4 measured: lock-step CPU coverage.

Not a table in the DATE'07 paper itself, but the claim it builds on:
"HW redundancy (lock-step dual core)" is assessed 'high' (99 %) by the
norm and realized in the companion fault-robust-CPU papers [8][16][17].
Here we *measure* the claim on a gate-level accumulator CPU with the
same injection machinery the memory study uses.
"""

from conftest import report

from repro.faultinjection import (
    CandidateList,
    FaultInjectionManager,
    SeuFault,
    StuckNetFault,
)
from repro.soc.minicpu import CpuConfig, MiniCpu, assemble
from repro.zones import ZoneKind, extract_zones

PROGRAM = [("ldi", 5), ("st", 0), ("ldi", 3), ("add", 0), ("out",),
           ("ldi", 0), ("jnz", 0), ("out",)]


def _campaign(cpu):
    zone_set = extract_zones(cpu.circuit)
    stimuli = [cpu.idle(rst=1)] * 2 + [cpu.idle()] * 80
    zone_of = {}
    for zone in zone_set.of_kind(ZoneKind.REGISTER):
        for flop in zone.flops:
            zone_of[flop] = zone.name
    faults = []
    targets = [f.name for f in cpu.circuit.flops
               if f.name.startswith("core_a/")]
    for i, flop in enumerate(targets):
        faults.append(SeuFault(target=flop, zone=zone_of[flop],
                               offset=6 + (i % 9)))
        faults.append(StuckNetFault(target=flop, zone=zone_of[flop],
                                    value=i % 2))
    manager = FaultInjectionManager(
        cpu.circuit, stimuli, zone_set=zone_set,
        setup=lambda sim: sim.load_mem("imem/rom",
                                       assemble(PROGRAM)))
    return manager.run(CandidateList(faults=faults))


def test_lockstep_measured_coverage(benchmark):
    lockstep = MiniCpu(CpuConfig.lockstep_pair())

    result = benchmark.pedantic(lambda: _campaign(lockstep),
                                rounds=2, iterations=1)
    plain_result = _campaign(MiniCpu(CpuConfig.plain()))

    dc_lockstep = result.measured_dc()
    dc_plain = plain_result.measured_dc()
    report(benchmark,
           iec_claim="high (99%)",
           measured_dc_lockstep=f"{dc_lockstep * 100:.1f}%",
           measured_dc_bare=f"{dc_plain * 100:.1f}%",
           injections=len(result.results))

    assert dc_plain < 0.5          # bare core leaks silently
    assert dc_lockstep > 0.9       # the 'high' claim holds


def test_lockstep_area_cost(benchmark):
    def build():
        return (MiniCpu(CpuConfig.plain()),
                MiniCpu(CpuConfig.lockstep_pair()))

    plain, lockstep = benchmark(build)
    ratio = lockstep.circuit.gate_count() / plain.circuit.gate_count()
    report(benchmark, gate_ratio=f"{ratio:.2f}x")
    # the textbook cost of lock-step: a bit over 2x the core logic
    assert 1.8 < ratio < 3.0
