"""Serving overhead of the campaign API front end.

``soc-fmea serve --http`` wraps the durable job queue in a
stdlib-``asyncio`` HTTP/JSON server (docs §4j).  The API exists for
fault containment, not speed — but its fixed costs still have to
disappear next to any real campaign, so this suite pins them: a
health round-trip (one connection + bounded parse + respond), a
submit/dedupe pair (authn + admission control + the idempotent
enqueue, twice), and the first-snapshot turnaround of the progress
stream.

Writes ``BENCH_api.json`` (into ``$BENCH_JSON_DIR``, default the
current directory) so CI archives the measurement.
"""

import json
import os
import threading
from pathlib import Path

import pytest

from conftest import report

from repro.api import ApiClient, ApiConfig, ApiServer

_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _collect_record(request):
    """Mirror each benchmark's stats + extra_info into the JSON log."""
    yield
    bench = request.node.funcargs.get("benchmark")
    if bench is None or getattr(bench, "stats", None) is None:
        return
    entry = {"extra_info": dict(bench.extra_info)}
    entry["timing"] = {
        key: value for key, value in bench.stats.stats.as_dict().items()
        if key in ("min", "max", "mean", "stddev", "median", "rounds",
                   "ops")}
    _RECORDS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_api.json`` once the module is done."""
    yield
    if not _RECORDS:
        return
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) \
        / "BENCH_api.json"
    out.write_text(json.dumps(
        {"suite": "bench_api", "records": _RECORDS},
        indent=2, sort_keys=True))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One queue-only API server (no embedded workers) for the
    module; jobs stay queued, which is exactly what the fixed-cost
    measurements want."""
    root = tmp_path_factory.mktemp("api") / "store"
    srv = ApiServer(root, ApiConfig(verbose=False,
                                    max_queue_depth=100_000))
    thread = threading.Thread(target=srv.run, daemon=True)
    thread.start()
    assert srv.wait_started(20)
    yield srv
    srv.stop()
    thread.join(timeout=30)


@pytest.fixture(scope="module")
def client(server):
    return ApiClient("127.0.0.1", server.port, max_retries=0,
                     timeout=10.0)


def test_health_roundtrip(benchmark, client):
    """Connection + bounded request parse + JSON respond, no queue
    touch — the floor under every other endpoint."""
    assert client.health() == {"ok": True}        # warm the path
    benchmark(client.health)
    per_ms = benchmark.stats.stats.as_dict()["mean"] * 1e3
    report(benchmark, per_roundtrip_ms=f"{per_ms:.2f}")
    assert per_ms < 100


def test_submit_and_dedupe_pair(benchmark, client):
    """One fresh enqueue plus one idempotency-key replay plus the
    cancel: the full admission path (authn, watermark, quota scan,
    check-then-insert) twice over, converging on one job — cancelled
    at the end so the anonymous ``max_queued`` quota never fills."""
    counter = iter(range(10_000_000))

    def pair():
        key = f"bench-{next(counter)}"
        spec = {"variant": "small-improved", "sample": 8}
        first = client.submit(spec, idempotency_key=key)
        again = client.submit(spec, idempotency_key=key)
        assert not first["deduped"] and again["deduped"]
        assert first["job"] == again["job"]
        client.cancel(first["job"])

    benchmark(pair)
    per_ms = benchmark.stats.stats.as_dict()["mean"] * 1e3
    report(benchmark, per_submit_dedupe_pair_ms=f"{per_ms:.2f}")
    # two admission passes + one INSERT must stay far below one
    # simulated fault's cost
    assert per_ms < 500


def test_stream_first_snapshot_turnaround(benchmark, client):
    """Time to open ``/v1/jobs/<id>/events`` and receive the first
    state snapshot of a terminal job — the stream-resume cost a
    reconnecting client pays after a drop."""
    job_id = client.submit({"variant": "small-improved"},
                           idempotency_key="bench-stream")["job"]
    client.cancel(job_id)                 # terminal: stream ends fast

    def first_snapshot():
        events = list(client.stream(job_id))
        assert events and events[-1]["status"] == "cancelled"

    benchmark(first_snapshot)
    per_ms = benchmark.stats.stats.as_dict()["mean"] * 1e3
    report(benchmark, per_stream_open_ms=f"{per_ms:.2f}")
    assert per_ms < 250
