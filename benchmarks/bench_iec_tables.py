"""T-A / T-B — §2: the IEC 61508 tables the methodology relies on.

* the SFF/HFT architectural-constraint table ("With a HFT equal to
  zero, a SFF equal or greater than 99% is required in order that the
  system or component can be granted with SIL3.  With a HFT equal to
  one, the SFF should be greater than 90%");
* the Annex A maximum-DC claims ("RAM monitoring with Hamming code or
  ECCs or double RAMs with hardware/software comparison are the ones
  with the highest value").
"""

from conftest import report

from repro.iec61508 import (
    DcLevel,
    SIL,
    Target,
    architecture_table,
    max_sil,
    required_sff,
    technique,
    techniques_for,
)


def test_sff_hft_table(benchmark):
    table = benchmark(lambda: architecture_table(type_b=True))
    report(benchmark, rows=[(label, cells) for label, cells in table])

    assert len(table) == 4
    # paper-quoted rows
    assert max_sil(0.99, hft=0) is SIL.SIL3
    assert max_sil(0.95, hft=0) is SIL.SIL2
    assert max_sil(0.90, hft=1) is SIL.SIL3
    assert required_sff(SIL.SIL3, hft=0) == 0.99
    assert required_sff(SIL.SIL3, hft=1) == 0.90
    # type B, SFF < 60 %, HFT 0: not allowed
    assert table[0][1][0] == "not allowed"


def test_technique_dc_table(benchmark):
    rows = benchmark(lambda: [
        (t.key, t.name, t.max_dc.label, t.table)
        for target in Target for t in techniques_for(target)])
    report(benchmark, techniques=len(rows))

    assert len(rows) >= 25
    # the paper's §2 ordering: Hamming/ECC and double-RAM are 'high'
    assert technique("ram_ecc_hamming").max_dc is DcLevel.HIGH
    assert technique("ram_double_comparison").max_dc is DcLevel.HIGH
    assert technique("ram_parity").max_dc is DcLevel.LOW
    # every target class has at least one catalogued technique
    for target in Target:
        assert techniques_for(target), target
    # the three claim levels carry the canonical values
    assert float(DcLevel.LOW.value) == 0.60
    assert float(DcLevel.MEDIUM.value) == 0.90
    assert float(DcLevel.HIGH.value) == 0.99
