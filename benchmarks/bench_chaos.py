"""Cost of the dormant failpoint instrumentation.

Every durable-path operation (blob put, db commit, queue claim /
heartbeat / transition, daemon spawn / drain) now passes through
:func:`repro.chaos.failpoints.fail_at`.  With no failpoints armed —
the production configuration — that call must be a single
dict-emptiness check, so the instrumented store/queue/daemon stack
stays within 2% of what it would cost with the call sites deleted.

A direct A/B timing of warm sqlite transactions cannot resolve a 2%
bound (fsync jitter alone exceeds it), so the budget is established
the rigorous way: pin the per-call guard cost in nanoseconds, count
the guard calls one operation actually traverses, and assert that
``calls x cost`` is under 2% of the measured operation time.

Writes ``BENCH_chaos.json`` (into ``$BENCH_JSON_DIR``, default the
current directory) so CI archives the overhead measurement.
"""

import json
import os
import timeit
from pathlib import Path

import pytest

from conftest import report

import repro.service.queue as queue_mod
import repro.store.blobs as blobs_mod
from repro.chaos import failpoints
from repro.chaos.failpoints import fail_at
from repro.service import JobQueue
from repro.store import BlobStore

_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _collect_record(request):
    """Mirror each benchmark's stats + extra_info into the JSON log."""
    yield
    bench = request.node.funcargs.get("benchmark")
    if bench is None or getattr(bench, "stats", None) is None:
        return
    entry = {"extra_info": dict(bench.extra_info)}
    entry["timing"] = {
        key: value for key, value in bench.stats.stats.as_dict().items()
        if key in ("min", "max", "mean", "stddev", "median", "rounds",
                   "ops")}
    _RECORDS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_chaos.json`` once the module is done."""
    yield
    if not _RECORDS:
        return
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) \
        / "BENCH_chaos.json"
    out.write_text(json.dumps(
        {"suite": "bench_chaos", "records": _RECORDS},
        indent=2, sort_keys=True))


def _guard_ns(benchmark=None) -> float:
    """Measure the disarmed ``fail_at`` guard, ns per call."""
    failpoints.clear()
    names = [site.name for site in failpoints.registry()]

    def burst():
        for _ in range(1000):
            for name in names:
                fail_at(name)

    calls = 1000 * len(names)
    if benchmark is not None:
        benchmark(burst)
        return benchmark.stats.stats.as_dict()["mean"] / calls * 1e9
    best = min(timeit.repeat(burst, number=1, repeat=20))
    return best / calls * 1e9


def _count_calls(monkeypatch, *modules) -> list[int]:
    """Route the named modules' bound ``fail_at`` through a counter.

    The durable-path modules bind ``fail_at`` at import time
    (``from ..chaos.failpoints import fail_at``), so the counter has
    to be planted on each consumer, not on the source module.
    """
    counter = [0]

    def counting(name, path=None):
        counter[0] += 1
        return fail_at(name, path=path)

    for module in modules:
        monkeypatch.setattr(module, "fail_at", counting)
    return counter


def test_disabled_fail_at_is_nanoseconds(benchmark):
    """The bare guard: with nothing armed, a ``fail_at`` call across
    any registered site must stay in sub-microsecond territory —
    orders of magnitude below a single sqlite statement."""
    ns_per_call = _guard_ns(benchmark)
    report(benchmark, sites=len(failpoints.registry()),
           ns_per_call=f"{ns_per_call:.0f}")
    assert ns_per_call < 2000


def test_queue_lifecycle_instrumentation_budget(
        benchmark, tmp_path_factory, monkeypatch):
    """Guard cost as a fraction of one warm job lifecycle
    (submit → claim → start → heartbeat → complete): must be <2%."""
    counter = _count_calls(monkeypatch, queue_mod)
    root = tmp_path_factory.mktemp("chaos") / "queue"

    def lifecycle():
        with JobQueue(root) as queue:
            job_id = queue.submit({"variant": "small-improved"})
            job = queue.claim("bench", lease_seconds=60.0)
            assert job.job_id == job_id
            queue.start(job_id, "bench")
            queue.heartbeat(job_id, "bench")
            queue.complete(job_id, "bench", {"exit_code": 0})

    lifecycle()     # warm sqlite / create the database
    counter[0] = 0
    lifecycle()
    calls_per_op = counter[0]
    assert calls_per_op >= 3    # claim + heartbeat + transition

    benchmark(lifecycle)
    op_ns = benchmark.stats.stats.as_dict()["min"] * 1e9
    guard_ns = _guard_ns()
    budget_pct = calls_per_op * guard_ns / op_ns * 100
    report(benchmark, fail_at_calls_per_lifecycle=calls_per_op,
           guard_ns=f"{guard_ns:.0f}",
           lifecycle_ms=f"{op_ns / 1e6:.2f}",
           overhead_pct=f"{budget_pct:.4f}%")
    assert budget_pct < 2.0


def test_blob_put_instrumentation_budget(
        benchmark, tmp_path_factory, monkeypatch):
    """Guard cost as a fraction of one blob write.  Non-durable puts
    are the worst case for the ratio — no fsync to hide behind — and
    each put crosses four failpoint sites."""
    counter = _count_calls(monkeypatch, blobs_mod)
    root = tmp_path_factory.mktemp("chaos") / "blobs"
    store = BlobStore(root, durable=False)
    serial = [0]

    def payload() -> bytes:
        # fresh content each call: identical bytes dedup to the
        # path-exists fast path and never reach the write
        serial[0] += 1
        return serial[0].to_bytes(8, "big") + b"x" * 4088

    def put_batch():
        for _ in range(64):
            store.put(payload())

    put_batch()     # warm the object directory fan-out
    counter[0] = 0
    store.put(payload())
    calls_per_op = counter[0]
    assert calls_per_op == 4

    benchmark(put_batch)
    op_ns = benchmark.stats.stats.as_dict()["min"] * 1e9 / 64
    guard_ns = _guard_ns()
    budget_pct = calls_per_op * guard_ns / op_ns * 100
    report(benchmark, fail_at_calls_per_put=calls_per_op,
           guard_ns=f"{guard_ns:.0f}",
           put_us=f"{op_ns / 1e3:.1f}",
           overhead_pct=f"{budget_pct:.4f}%")
    assert budget_pct < 2.0
