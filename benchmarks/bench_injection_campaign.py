"""E5 / F4 — §5(a) + Figure 4: the fault-injection campaign.

"it is performed an exhaustive fault injection of sensible zone
failures ... At the end of this analysis, both the results and the
coverage are cross-checked with FMEA" and "Only when all the coverage
items are covered at 100% we can consider complete the fault injection
experiment."

Runs the exhaustive zone campaign on the reduced improved subsystem
(simulation-bound; the methodology is size-independent) and checks:
measured DC does not fall short of the claimed DC, the measured effects
table is structurally consistent, and the campaign throughput is
reported.
"""

from conftest import report

from repro.faultinjection import (
    CampaignConfig,
    ResultAnalyzer,
    build_environment,
)
from repro.zones import predict_effects_table

import pytest


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


def test_exhaustive_zone_campaign(benchmark, env):
    candidates = env.candidates()

    def run():
        return env.manager(CampaignConfig()).run(candidates)

    campaign = benchmark.pedantic(run, rounds=2, iterations=1)

    analyzer = ResultAnalyzer(campaign)
    analyzer.fill_worksheet(env.worksheet)
    claimed_dc = env.worksheet.totals().dc
    measured_dc = campaign.measured_dc()
    throughput = len(campaign.results) / max(campaign.wall_seconds,
                                             1e-9)
    report(benchmark,
           injections=len(campaign.results),
           measured_dc=f"{measured_dc * 100:.1f}%",
           claimed_dc=f"{claimed_dc * 100:.1f}%",
           injections_per_second=f"{throughput:.0f}",
           outcomes=campaign.outcomes())

    # §5: measured percentages "in line with the estimated values" —
    # overclaims are what validation must catch
    assert measured_dc >= claimed_dc - 0.25
    # the campaign exercised most zones (SENS)
    assert campaign.coverage.sens_coverage() > 0.9


def test_effects_table_consistency(benchmark, env):
    campaign = env.manager(CampaignConfig()).run(env.candidates())
    predicted = predict_effects_table(env.zone_set)

    def run():
        return ResultAnalyzer(campaign).compare_effects(predicted)

    comparison = benchmark(run)
    report(benchmark,
           measured_effects=comparison.measured_effects,
           violations=len(comparison.violations))
    # "This table is automatically compared with the FMEA to check if
    # the identification of main/secondary effects is consistent."
    assert comparison.consistent, comparison.violations
    assert comparison.measured_effects > 30


def test_campaign_parallel_speedup(benchmark, env):
    """The bit-parallel machines must beat serial injection."""
    candidates = env.candidates()

    def wide():
        return env.manager(
            CampaignConfig(machines_per_pass=48)).run(candidates)

    campaign = benchmark(wide)
    serial_cfg = CampaignConfig(machines_per_pass=1)
    serial = env.manager(serial_cfg).run(
        type(candidates)(faults=candidates.faults[:8]))
    per_fault_wide = campaign.wall_seconds / len(campaign.results)
    per_fault_serial = serial.wall_seconds / len(serial.results)
    report(benchmark,
           per_fault_parallel_ms=f"{per_fault_wide * 1e3:.1f}",
           per_fault_serial_ms=f"{per_fault_serial * 1e3:.1f}")
    assert per_fault_wide < per_fault_serial
