"""E5 / F4 — §5(a) + Figure 4: the fault-injection campaign.

"it is performed an exhaustive fault injection of sensible zone
failures ... At the end of this analysis, both the results and the
coverage are cross-checked with FMEA" and "Only when all the coverage
items are covered at 100% we can consider complete the fault injection
experiment."

Runs the exhaustive zone campaign on the reduced improved subsystem
(simulation-bound; the methodology is size-independent) and checks:
measured DC does not fall short of the claimed DC, the measured effects
table is structurally consistent, and the campaign throughput is
reported.

Besides the usual pytest-benchmark console table, this module writes a
machine-readable ``BENCH_campaign.json`` (into ``$BENCH_JSON_DIR``,
default the current directory) with every benchmark's timing stats and
paper-vs-measured numbers, so CI can archive campaign performance as a
build artifact.
"""

import json
import os
from pathlib import Path

from conftest import report

from repro.faultinjection import (
    CampaignCache,
    CampaignConfig,
    CampaignSpec,
    CampaignSupervisor,
    ENGINE_COMPILED,
    ENGINE_INTERPRETED,
    FaultListConfig,
    ParallelCampaignRunner,
    ResultAnalyzer,
    build_environment,
    randomize,
)
from repro.zones import predict_effects_table

import pytest

_RECORDS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def _collect_record(request):
    """Mirror each benchmark's stats + extra_info into the JSON log."""
    yield
    bench = request.node.funcargs.get("benchmark")
    if bench is None or getattr(bench, "stats", None) is None:
        return
    entry = {"extra_info": dict(bench.extra_info)}
    entry["timing"] = {
        key: value for key, value in bench.stats.stats.as_dict().items()
        if key in ("min", "max", "mean", "stddev", "median", "rounds",
                   "ops")}
    _RECORDS[request.node.name] = entry


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write ``BENCH_campaign.json`` once the module is done."""
    yield
    if not _RECORDS:
        return
    out = Path(os.environ.get("BENCH_JSON_DIR", ".")) \
        / "BENCH_campaign.json"
    out.write_text(json.dumps(
        {"suite": "bench_injection_campaign", "records": _RECORDS},
        indent=2, sort_keys=True))


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


def test_exhaustive_zone_campaign(benchmark, env):
    candidates = env.candidates()

    def run():
        return env.manager(CampaignConfig()).run(candidates)

    campaign = benchmark.pedantic(run, rounds=2, iterations=1)

    analyzer = ResultAnalyzer(campaign)
    analyzer.fill_worksheet(env.worksheet)
    claimed_dc = env.worksheet.totals().dc
    measured_dc = campaign.measured_dc()
    throughput = len(campaign.results) / max(campaign.wall_seconds,
                                             1e-9)
    report(benchmark,
           injections=len(campaign.results),
           measured_dc=f"{measured_dc * 100:.1f}%",
           claimed_dc=f"{claimed_dc * 100:.1f}%",
           injections_per_second=f"{throughput:.0f}",
           outcomes=campaign.outcomes())

    # §5: measured percentages "in line with the estimated values" —
    # overclaims are what validation must catch
    assert measured_dc >= claimed_dc - 0.25
    # the campaign exercised most zones (SENS)
    assert campaign.coverage.sens_coverage() > 0.9


def test_effects_table_consistency(benchmark, env):
    campaign = env.manager(CampaignConfig()).run(env.candidates())
    predicted = predict_effects_table(env.zone_set)

    def run():
        return ResultAnalyzer(campaign).compare_effects(predicted)

    comparison = benchmark(run)
    report(benchmark,
           measured_effects=comparison.measured_effects,
           violations=len(comparison.violations))
    # "This table is automatically compared with the FMEA to check if
    # the identification of main/secondary effects is consistent."
    assert comparison.consistent, comparison.violations
    assert comparison.measured_effects > 30


def test_campaign_parallel_speedup(benchmark, env):
    """The bit-parallel machines must beat serial injection."""
    candidates = env.candidates()

    def wide():
        return env.manager(
            CampaignConfig(machines_per_pass=48)).run(candidates)

    campaign = benchmark(wide)
    serial_cfg = CampaignConfig(machines_per_pass=1)
    serial = env.manager(serial_cfg).run(
        type(candidates)(faults=candidates.faults[:8]))
    per_fault_wide = campaign.wall_seconds / len(campaign.results)
    per_fault_serial = serial.wall_seconds / len(serial.results)
    report(benchmark,
           per_fault_parallel_ms=f"{per_fault_wide * 1e3:.1f}",
           per_fault_serial_ms=f"{per_fault_serial * 1e3:.1f}")
    assert per_fault_wide < per_fault_serial


def test_campaign_engine_speedup(benchmark, env):
    """Compiled bit-parallel kernel vs the interpreted oracle.

    A dense 1023-fault list fills one full compiled shard (1024
    machines including the golden lane) that the interpreted engine
    has to chew through in 22 passes of 48 machines.  The compiled
    engine must agree bit-for-bit on every safety metric and be at
    least 10x faster.
    """
    dense = env.candidates(FaultListConfig(
        transient_per_zone=16, permanent_per_zone=16,
        mem_words_sampled=16))
    candidates = randomize(dense, 1023)

    def compiled_run():
        return env.manager(
            CampaignConfig(engine=ENGINE_COMPILED)).run(candidates)

    campaign = benchmark.pedantic(compiled_run, rounds=2, iterations=1)
    compiled_s = min(benchmark.stats.stats.as_dict()["min"],
                     campaign.wall_seconds)

    interpreted = env.manager(
        CampaignConfig(engine=ENGINE_INTERPRETED)).run(candidates)
    interpreted_s = interpreted.wall_seconds

    # the kernel is only admissible because it is bit-identical
    assert campaign.outcomes() == interpreted.outcomes()
    assert campaign.measured_dc() == interpreted.measured_dc()
    assert campaign.measured_safe_fraction() == \
        interpreted.measured_safe_fraction()
    assert [r.fault.name for r in campaign.results] == \
        [r.fault.name for r in interpreted.results]

    speedup = interpreted_s / max(compiled_s, 1e-9)
    report(benchmark,
           injections=len(campaign.results),
           compiled_s=f"{compiled_s:.2f}",
           interpreted_s=f"{interpreted_s:.2f}",
           engine_speedup=f"{speedup:.1f}x",
           measured_dc=f"{campaign.measured_dc() * 100:.1f}%")
    assert speedup >= 10


def test_campaign_sharded_worker_speedup(benchmark, env):
    """Serial pass loop vs the sharded multi-process campaign runner.

    The large campaign (denser per-zone sampling than the default) is
    run once through the in-process manager and then through
    ``ParallelCampaignRunner`` with 4 workers; both paths must agree
    bit-for-bit on the safety metrics, and on a machine with enough
    cores the sharded run must be at least 1.5x faster.
    """
    candidates = env.candidates(FaultListConfig(
        transient_per_zone=8, permanent_per_zone=8,
        mem_words_sampled=8))
    spec = CampaignSpec.from_environment(env)
    workers = 4

    serial = spec.manager().run(candidates)

    def sharded():
        runner = ParallelCampaignRunner(spec, workers=workers)
        result = runner.run(candidates)
        result.stats = runner.last_stats
        return result

    campaign = benchmark.pedantic(sharded, rounds=1, iterations=1)
    assert campaign.outcomes() == serial.outcomes()
    assert campaign.measured_dc() == serial.measured_dc()
    assert campaign.measured_safe_fraction() == \
        serial.measured_safe_fraction()

    speedup = serial.wall_seconds / max(campaign.wall_seconds, 1e-9)
    report(benchmark,
           injections=len(campaign.results),
           workers=workers,
           serial_s=f"{serial.wall_seconds:.2f}",
           sharded_s=f"{campaign.wall_seconds:.2f}",
           speedup=f"{speedup:.2f}x",
           golden_trace_s=f"{campaign.stats.golden_seconds:.2f}",
           cores=os.cpu_count())
    # the speedup target only holds where the cores exist to back it
    if (os.cpu_count() or 1) >= workers:
        assert speedup >= 1.5


def test_campaign_cache_warm_speedup(benchmark, env, tmp_path_factory):
    """Cold (populating) vs warm (fully cached) campaign store runs.

    The warm rerun must perform **zero** fault simulations — every
    outcome is served by content address — and, provided the cold run
    was long enough to measure, finish at least 5x faster.
    """
    store = tmp_path_factory.mktemp("bench_store") / "campaign"
    candidates = env.candidates()
    spec = env.spec()

    with CampaignCache(store) as cache:
        cold = ParallelCampaignRunner(spec, workers=1,
                                      cache=cache).run(candidates)
        assert cache.stats.simulated == len(candidates.faults)
    cold_seconds = cold.wall_seconds

    def warm():
        with CampaignCache(store) as cache:
            result = ParallelCampaignRunner(
                spec, workers=1, cache=cache).run(candidates)
            result.cache_stats = cache.stats
            return result

    campaign = benchmark(warm)
    stats = campaign.cache_stats
    assert stats.simulated == 0
    assert stats.hits == len(candidates.faults)
    assert campaign.measured_dc() == cold.measured_dc()
    assert campaign.measured_safe_fraction() == \
        cold.measured_safe_fraction()

    speedup = cold_seconds / max(campaign.wall_seconds, 1e-9)
    report(benchmark,
           injections=len(campaign.results),
           cold_s=f"{cold_seconds:.2f}",
           warm_s=f"{campaign.wall_seconds:.2f}",
           warm_speedup=f"{speedup:.1f}x",
           hit_rate=f"{stats.hit_rate() * 100:.1f}%",
           faults_simulated_warm=stats.simulated)
    # below ~0.2s of cold work the ratio is dominated by fixed costs
    if cold_seconds > 0.2:
        assert speedup >= 5


def test_campaign_supervisor_overhead(benchmark, env):
    """The fault-tolerant supervisor on a clean run vs the bare
    sharded runner.

    Supervision adds per-shard process management (one worker process
    per shard instead of a long-lived pool) plus deadline polling;
    on a healthy campaign that bookkeeping must stay under 5% of the
    unsupervised wall-clock — resilience is supposed to be free until
    something actually fails.  Results must stay bit-identical.
    """
    candidates = env.candidates(FaultListConfig(
        transient_per_zone=8, permanent_per_zone=8,
        mem_words_sampled=8))
    spec = CampaignSpec.from_environment(env)
    workers = 4

    def unsupervised():
        return ParallelCampaignRunner(
            spec, workers=workers).run(candidates)

    def supervised():
        supervisor = CampaignSupervisor(spec, workers=workers)
        result = supervisor.run(candidates)
        result.anomalies = supervisor.anomalies
        return result

    base = min(unsupervised().wall_seconds,
               unsupervised().wall_seconds)
    campaign = benchmark.pedantic(supervised, rounds=2, iterations=1)
    reference = unsupervised()

    assert campaign.anomalies == []
    assert campaign.outcomes() == reference.outcomes()
    assert campaign.measured_dc() == reference.measured_dc()
    assert campaign.measured_safe_fraction() == \
        reference.measured_safe_fraction()

    supervised_s = min(benchmark.stats.stats.as_dict()["min"],
                       campaign.wall_seconds)
    overhead = supervised_s / max(base, 1e-9) - 1.0
    report(benchmark,
           injections=len(campaign.results),
           workers=workers,
           unsupervised_s=f"{base:.2f}",
           supervised_s=f"{supervised_s:.2f}",
           overhead_pct=f"{overhead * 100:.1f}%",
           cores=os.cpu_count())
    # under ~1s the ratio is noise-dominated; elsewhere supervision
    # must cost <5%
    if base > 1.0:
        assert overhead < 0.05


def test_scaled_banked_campaign(benchmark, banked_small):
    """The campaign at the paper's zone population.

    Two reduced banks behind a shared bus put the sensible-zone count
    at the scale of the paper's Table 1 (~170 zones) while the
    compiled kernel keeps the exhaustive campaign affordable — the
    scale knob behind ``soc-fmea campaign --banks`` and the
    exploration search.
    """
    env = build_environment(banked_small, quick=True)
    zones = len(env.zone_set)
    assert 150 <= zones <= 200      # the paper's "about 170"
    candidates = env.candidates()

    def run():
        return env.manager(
            CampaignConfig(engine=ENGINE_COMPILED)).run(candidates)

    campaign = benchmark.pedantic(run, rounds=2, iterations=1)
    throughput = len(campaign.results) / max(campaign.wall_seconds,
                                             1e-9)
    report(benchmark,
           zones=zones,
           injections=len(campaign.results),
           measured_dc=f"{campaign.measured_dc() * 100:.1f}%",
           injections_per_second=f"{throughput:.0f}",
           outcomes=campaign.outcomes())
    assert campaign.coverage.sens_coverage() > 0.9
