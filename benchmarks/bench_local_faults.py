"""E7 — §5(c): selective local HW fault injection in critical areas.

"for critical areas ... a selective HW fault injection is performed,
injecting local faults with fault injector.  The validation is
successful if the results of such injection confirm the results of the
exhaustive sensible zone failure fault injection. ... the fault
simulator can be used to precisely measure the fault coverage vs
permanent faults respect the workload and the implemented diagnostic."
"""

from conftest import report

import pytest

from repro.faultinjection import (
    build_environment,
    generate_cone_faults,
    generate_gate_faults,
    simulate_faults,
)
from repro.fmea import rank_zones
from repro.zones import ZoneKind


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


def _critical_register_zones(env, count=4):
    zones = []
    for row in rank_zones(env.worksheet):
        try:
            zone = env.zone_set.by_name(row.zone)
        except KeyError:
            continue
        if zone.kind is ZoneKind.REGISTER and zone.path:
            zones.append(zone.name)
        if len(zones) >= count:
            break
    return zones


def test_local_cone_injection(benchmark, env):
    zones = _critical_register_zones(env)
    faults = generate_cone_faults(env.zone_set, env.circuit, zones,
                                  per_zone=20)

    campaign = benchmark.pedantic(
        lambda: env.manager().run(faults), rounds=1, iterations=1)
    dc = campaign.measured_dc()
    report(benchmark, critical_zones=zones,
           gate_faults=len(faults),
           local_dc=f"{dc * 100:.1f}%")
    assert len(campaign.results) == len(faults)
    # zone-level campaign on the same areas for consistency
    zone_campaign = env.manager().run(env.candidates())
    zone_dc = zone_campaign.measured_dc()
    # "results of such injection confirm the results of the exhaustive
    # sensible zone failure fault injection"
    assert abs(dc - zone_dc) < 0.45


def test_fault_simulator_coverage(benchmark, improved_small, env):
    """Permanent-fault coverage of the decoder under the workload."""
    faults = generate_gate_faults(improved_small.circuit,
                                  paths=("fmem/decoder",))

    result = benchmark.pedantic(
        lambda: simulate_faults(
            improved_small.circuit, env.stimuli, candidates=faults,
            setup=env.setup),
        rounds=1, iterations=1)
    report(benchmark, summary=result.summary())
    assert result.total == len(faults)
    # the decoder is heavily exercised: most stuck-ats are observable
    assert result.coverage > 0.5
    # throughput worth tracking: faults simulated per second
    benchmark.extra_info["faults_per_second"] = (
        f"{result.total / max(result.wall_seconds, 1e-9):.0f}")
