"""F1-F3 — §3 Figures 1-3: sensible zones, multiple failures,
main/secondary effects.

Checks the structural effect prediction (the main effect is the nearest
observation point, secondary effects follow through the output cone)
and its agreement with what injection actually measures.
"""

from conftest import report

import pytest

from repro.faultinjection import ResultAnalyzer, build_environment
from repro.zones import ZoneKind, predict_effects_table


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


def test_effect_prediction(benchmark, env):
    table = benchmark(lambda: predict_effects_table(env.zone_set))
    report(benchmark, zones_with_effects=sum(
        1 for p in table.values() if p.effects))

    # figure 1: a zone has a main effect (order 0, minimal distance)
    reg_zones = [z.name for z in env.zone_set.zones
                 if z.kind is ZoneKind.REGISTER]
    with_effects = [table[z] for z in reg_zones if table[z].effects]
    assert with_effects
    for pred in with_effects:
        assert pred.main is pred.effects[0]
        dists = [e.distance for e in pred.effects]
        assert dists == sorted(dists)

    # figure 3: secondary effects exist (one failure, several
    # observation points)
    assert any(pred.secondary for pred in with_effects)


def test_wbuf_zone_reaches_data_and_alarms(benchmark, env):
    """The write-buffer data feeds both the functional output (through
    the array and decoder) and the diagnostic alarms."""
    table = benchmark(lambda: predict_effects_table(env.zone_set))
    wbuf = next(p for name, p in table.items()
                if name.startswith("fmem/wbuf/data"))
    observed = {e.observation for e in wbuf.effects}
    assert "hrdata" in observed
    assert any(o.startswith("alarm") for o in observed)


def test_measured_effects_subset_of_predicted(benchmark, env):
    campaign = env.manager().run(env.candidates())
    predicted = predict_effects_table(env.zone_set)

    comparison = benchmark(lambda: ResultAnalyzer(
        campaign).compare_effects(predicted))
    report(benchmark,
           checked_zones=comparison.checked_zones,
           measured_effects=comparison.measured_effects)
    assert comparison.consistent


def test_wide_fault_multiple_failures(benchmark, env):
    """Figure 2: a single wide fault fails several zones at once."""
    from repro.zones import FaultClassifier
    classifier = FaultClassifier(env.zone_set)

    def census():
        multi = 0
        for gi in range(len(env.circuit.gates)):
            if classifier.classify_gate(gi).multiplicity > 1:
                multi += 1
        return multi

    multi = benchmark(census)
    report(benchmark, wide_gates=multi)
    assert multi > 0
