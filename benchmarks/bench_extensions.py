"""Extension analyses around the paper's flow.

* AVF cross-check (refs [13][14]): the FMEA's assumed dangerous
  fractions against the injection-measured vulnerability;
* SET derating (§3's glitch-masking remark): the measured fraction of
  combinational glitches that become soft errors;
* fault dictionary: diagnosability of the improved design's alarm set
  (what §6's distributed syndrome checking buys);
* X-propagation reset sign-off.
"""

from conftest import report

import pytest

from repro.analysis import avf_report, measure_set_derating
from repro.faultinjection import FaultDictionary, build_environment
from repro.hdl import reset_coverage


@pytest.fixture(scope="module")
def env(improved_small):
    return build_environment(improved_small, quick=True)


@pytest.fixture(scope="module")
def campaign(env):
    return env.manager().run(env.candidates())


def test_avf_cross_check(benchmark, env, campaign):
    result = benchmark(lambda: avf_report(
        env.zone_set, env.worksheet, campaign=campaign,
        profile=env.profile()))
    inconsistent = result.inconsistent(tolerance=0.5)
    report(benchmark,
           zones_checked=len(result.estimates),
           assumption_violations=len(inconsistent))
    assert result.estimates
    # the FMEA's danger assumptions must broadly cover the measured AVF
    with_measure = [e for e in result.estimates
                    if e.injected_avf is not None]
    assert len(inconsistent) <= len(with_measure) * 0.25


def test_set_derating(benchmark, improved_small, env):
    result = benchmark.pedantic(
        lambda: measure_set_derating(
            improved_small.circuit, env.stimuli, samples=150, seed=3,
            setup=lambda s: improved_small.preload(s, {})),
        rounds=1, iterations=1)
    report(benchmark, summary=result.summary())
    # most SET glitches are masked — the §3 argument for derating the
    # per-gate transient FIT
    assert result.latch_fraction < 0.6
    assert result.latch_fraction > 0.02


def test_fault_dictionary_diagnosability(benchmark, campaign):
    dictionary = benchmark(lambda: FaultDictionary.build(campaign))
    report(benchmark, summary=dictionary.summary())
    # §6 iii: the distributed alarms give real diagnosability
    assert dictionary.distinct_signatures > 10
    assert dictionary.resolution() > 0.25
    # diagnosing every campaign effect lands the true zone in top-5
    hits = total = 0
    for res in campaign.results:
        if res.effects and res.fault.zone:
            total += 1
            top = dictionary.diagnose(res.effects, top=5)
            hits += any(c.zone == res.fault.zone for c in top)
    benchmark.extra_info["top5_accuracy"] = f"{hits / total * 100:.0f}%"
    assert hits / total > 0.7


def test_reset_sign_off(benchmark, improved_small):
    sub = improved_small

    def run():
        reset = [sub.reset_op() for _ in range(3)]
        check = [sub.write(2, 0x11), sub.idle(), sub.idle(),
                 sub.read(2), sub.idle(), sub.idle(), sub.idle()]
        return reset_coverage(sub.circuit, reset, check)

    result = benchmark(run)
    report(benchmark, summary=result.summary())
    assert result.clean
    # the datapath intentionally has un-reset registers
    assert not result.fully_initialized
