"""Scrub-interval sweep (DESIGN.md §5 ablation; paper refs [13][15]).

The dangerous residual of SEC-DED is double-error accumulation; the
F-MEM's scrubbing bounds it.  Regenerates the uncorrectable-rate vs
scrub-period series, validates the analytic model by Monte Carlo, and
exercises the gate-level repair loop.
"""

from conftest import report

from repro.analysis import ScrubModel, simulate_accumulation
from repro.soc import AhbMaster


def paper_model():
    return ScrubModel(words=256, word_bits=39, bit_fit=0.01)


def test_scrub_interval_sweep(benchmark):
    model = paper_model()
    intervals = [0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0]

    series = benchmark(lambda: model.sweep(intervals))
    report(benchmark, series=[(t, f"{fit:.3e}") for t, fit in series])

    fits = [fit for _, fit in series]
    # monotone: slower scrubbing -> higher uncorrectable rate
    assert fits == sorted(fits)
    # crossover shape: ~daily scrubbing buys orders of magnitude vs
    # a mission with no scrubbing
    assert model.uncorrectable_fit(24.0) < \
        model.unscrubbed_fit(20000.0) / 100


def test_monte_carlo_validates_model(benchmark):
    model = ScrubModel(words=1, word_bits=39, bit_fit=2e6)

    result = benchmark.pedantic(
        lambda: simulate_accumulation(model, interval_hours=1.0,
                                      trials=30000, seed=11),
        rounds=1, iterations=1)
    report(benchmark,
           measured=f"{result.measured_probability:.4f}",
           modeled=f"{result.modeled_probability:.4f}")
    assert result.agrees()


def test_gate_level_scrub_repair(benchmark, improved_small):
    sub = improved_small

    def run():
        master = AhbMaster(sub, scrub_en=1)
        master.reset()
        master.write(7, 0x5A)
        master.sim.schedule_mem_flip("memarray/array", 7, 1,
                                     cycle=master.sim.cycle)
        corrected = master.read(7)
        master.idle(20)
        stored = master.sim.read_mem_word("memarray/array", 7)
        return corrected, stored

    corrected, stored = benchmark.pedantic(run, rounds=2, iterations=1)
    assert corrected.data == 0x5A
    assert corrected.alarms["alarm_ce"] == 1
    assert stored == sub.encode_word(0x5A, 7)  # repaired in background
