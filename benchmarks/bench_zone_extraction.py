"""E1 — §6: "about 170 sensible zones resulted, including the memory
controller, the memory and the F-MEM/MCE blocks".

Extracts the sensible zones of the paper-size improved memory
sub-system and checks the count lands on the paper's order of
magnitude, with every §3 zone category present.
"""

from conftest import report

from repro.zones import ZoneKind, extract_zones


def test_zone_extraction_count(benchmark, improved_full):
    sub = improved_full

    def run():
        return sub.extract_zones()

    zone_set = benchmark(run)

    count = len(zone_set)
    report(benchmark)
    benchmark.extra_info.update({
        "paper_zones": "about 170",
        "measured_zones": count,
        "breakdown": zone_set.summary(),
    })

    # shape: on the order of 170 (same design family, not same RTL)
    assert 120 <= count <= 220, count
    # every §3 category must be represented
    for kind in (ZoneKind.REGISTER, ZoneKind.MEMORY,
                 ZoneKind.PRIMARY_OUTPUT, ZoneKind.CRITICAL_NET,
                 ZoneKind.SUBBLOCK):
        assert zone_set.of_kind(kind), kind
    # the memory controller, the memory and the F-MEM/MCE blocks all
    # contribute zones, as the paper reports
    names = " ".join(z.name for z in zone_set.zones)
    for block in ("memctrl", "memarray", "fmem", "mce"):
        assert block in names


def test_cone_statistics_populated(benchmark, baseline_full):
    zone_set = benchmark(lambda: extract_zones(
        baseline_full.circuit, baseline_full.extraction_config()))
    regs = zone_set.of_kind(ZoneKind.REGISTER)
    with_cones = [z for z in regs if z.cone_gates > 0]
    assert len(with_cones) > len(regs) * 0.5
    assert zone_set.correlation is not None
    assert zone_set.correlation.wide_gate_count > 0
