"""Shared fixtures for the reproduction benchmarks.

Paper-size (32-bit data, 256 words) subsystems are used for the static
analyses (extraction, FMEA, sensitivity); the reduced (8-bit, 16-word)
configuration is used for simulation-heavy campaigns, where the
absolute gate counts do not change the methodology's behaviour.
"""

import pytest

from repro.soc import MemorySubsystem, SubsystemConfig


@pytest.fixture(scope="session")
def baseline_full():
    return MemorySubsystem(SubsystemConfig.baseline())


@pytest.fixture(scope="session")
def improved_full():
    return MemorySubsystem(SubsystemConfig.improved())


@pytest.fixture(scope="session")
def baseline_small():
    return MemorySubsystem(SubsystemConfig.small_baseline())


@pytest.fixture(scope="session")
def improved_small():
    return MemorySubsystem(SubsystemConfig.small_improved())


@pytest.fixture(scope="session")
def banked_small():
    """Two reduced baseline banks behind a shared bus — the scale
    knob: ~170 sensible zones, the population of the paper's Table 1
    campaign, while staying simulation-affordable."""
    from repro.soc.banked import BankedMemorySubsystem
    from repro.soc.config import BankedConfig
    return BankedMemorySubsystem(
        BankedConfig.uniform(SubsystemConfig.small_baseline(), 2))


def report(benchmark, **extra):
    """Attach paper-vs-measured numbers to the benchmark record."""
    benchmark.extra_info.update(extra)
